//! Eraser-style lock-order checking for the workspace's synchronization
//! layer.
//!
//! The vendored `parking_lot` shim calls into this crate (under its
//! `lockcheck` cargo feature) on every `Mutex`/`RwLock` acquisition and
//! release, and across every `Condvar::wait`. Each lock is registered at
//! construction with a [`LockClass`] — a *class* of locks, not an
//! instance: `MappingShard(3)` names every dispatcher's mapping shard 3,
//! `Cache(1)` names node 1's cache lock, and so on. The checker keeps
//!
//! * a **thread-local held stack**: the classes this thread currently
//!   holds, in acquisition order, each with its acquisition site;
//! * a **global lock-order graph**: a directed edge `A → B` is recorded
//!   the first time any thread acquires a class-`B` lock while holding a
//!   class-`A` lock, together with a witness (both acquisition sites and
//!   the observing thread).
//!
//! On every blocking acquisition the checker enforces, in order:
//!
//! 1. **No recursive acquisition** of the same class (same group *and*
//!    index) — self-deadlock with non-reentrant locks.
//! 2. **Intra-group discipline**: index-ordered groups (the mapping
//!    shards) must be acquired strictly ascending; every other group
//!    forbids holding two of its locks at once (two threads nesting a
//!    group in opposite instance orders is a deadlock, and no code path
//!    in this workspace legitimately nests them).
//! 3. **The declared partial order** ([`DECLARED_ORDER`]): acquiring `B`
//!    while holding `A` panics if the declared order says `B` must come
//!    *before* `A` — even if the inverse nesting has never been observed.
//! 4. **Observed-graph acyclicity**: acquiring `B` while holding `A`
//!    panics if a path `B ⇒ A` already exists in the union of the
//!    observed graph and the declared order. This catches inversions
//!    between classes the declared order says nothing about, the moment
//!    the *second* ordering is observed — on any interleaving, not just
//!    one that happens to deadlock.
//!
//! A violation panics with a witness naming the acquiring site, the full
//! held set (classes + sites), the conflicting prior edge's two sites,
//! and both thread ids. `try_lock` acquisitions are recorded in the held
//! stack (so witnesses are complete) but checked against none of the
//! rules: a failed try has a non-blocking exit, so it cannot deadlock by
//! itself.
//!
//! This crate deliberately uses `std::sync` internally: it *implements*
//! the instrument-the-synchronization-layer analysis, so it cannot be a
//! client of the instrumented shim types (`phttp-lint` carves out this
//! one exemption from its no-`std::sync`-locks rule).

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::Location;
use std::sync::Mutex as StdMutex;

/// The lock groups of the workspace, one per family of locks that share
/// ordering semantics. The derived discriminant order is meaningless —
/// ordering constraints live in [`DECLARED_ORDER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockGroup {
    /// A per-front-end admission-session lock (`Vip` handshakes).
    AdmitSession,
    /// The Vip's handoff state machine.
    VipMachine,
    /// A per-front-end admission-session write half.
    SessionWrite,
    /// A per-front-end handoff endpoint (`BeHandoff` + stream).
    BeEndpoint,
    /// A per-front-end gossip publish serializer.
    GossipPublish,
    /// A per-(origin, peer) gossip stream write half.
    GossipTx,
    /// The tier's consistent-hash ownership ring.
    Ring,
    /// A per-front-end gossip view (`TierView`).
    TierView,
    /// A dispatcher connection-state shard.
    ConnShard,
    /// A dispatcher mapping-table shard (index-ordered: multi-shard
    /// holders must acquire strictly ascending).
    MappingShard,
    /// A per-node cache-mirror set.
    Mirror,
    /// A per-node health-gate breaker.
    Health,
    /// A back-end node's cache lock.
    Cache,
    /// A back-end node's control-session transmit state.
    Control,
    /// A back-end node's local single-flight table.
    DiskFlights,
    /// A back-end node's lateral single-flight table.
    LateralFlights,
    /// One in-flight fetch's outcome state (condvar-guarded).
    Flight,
    /// A back-end node's emulated disk spindle.
    DiskSpindle,
    /// A back-end node's idle lateral-connection pool (per peer).
    PeerPool,
    /// An ad-hoc class named at registration (rules apply; the name is
    /// the graph key, so reuse the same literal for the same lock).
    Other(&'static str),
    /// A lock constructed without a class. Tracked in the held stack for
    /// witness completeness, exempt from every rule.
    Unclassed,
}

impl LockGroup {
    /// Stable graph key (content-hashed, so equal names from different
    /// crates collapse to one node).
    fn key(self) -> &'static str {
        match self {
            LockGroup::AdmitSession => "AdmitSession",
            LockGroup::VipMachine => "VipMachine",
            LockGroup::SessionWrite => "SessionWrite",
            LockGroup::BeEndpoint => "BeEndpoint",
            LockGroup::GossipPublish => "GossipPublish",
            LockGroup::GossipTx => "GossipTx",
            LockGroup::Ring => "Ring",
            LockGroup::TierView => "TierView",
            LockGroup::ConnShard => "ConnShard",
            LockGroup::MappingShard => "MappingShard",
            LockGroup::Mirror => "Mirror",
            LockGroup::Health => "Health",
            LockGroup::Cache => "Cache",
            LockGroup::Control => "Control",
            LockGroup::DiskFlights => "DiskFlights",
            LockGroup::LateralFlights => "LateralFlights",
            LockGroup::Flight => "Flight",
            LockGroup::DiskSpindle => "DiskSpindle",
            LockGroup::PeerPool => "PeerPool",
            LockGroup::Other(name) => name,
            LockGroup::Unclassed => "Unclassed",
        }
    }

    /// Whether same-group nesting is legal when indices strictly ascend.
    fn index_ordered(self) -> bool {
        matches!(self, LockGroup::MappingShard)
    }
}

/// The class of a lock: its [`LockGroup`] plus an instance index (shard
/// index, node id, front-end id — whatever distinguishes instances whose
/// nesting the intra-group rule must reason about).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    group: LockGroup,
    index: u32,
}

impl LockClass {
    /// The class of locks constructed without registration.
    pub const UNCLASSED: LockClass = LockClass {
        group: LockGroup::Unclassed,
        index: 0,
    };

    /// A class from raw parts.
    pub const fn new(group: LockGroup, index: u32) -> Self {
        LockClass { group, index }
    }

    /// Mapping-table shard `i` (index-ordered group).
    pub const fn mapping_shard(i: u32) -> Self {
        Self::new(LockGroup::MappingShard, i)
    }

    /// Connection-state shard `i`.
    pub const fn conn_shard(i: u32) -> Self {
        Self::new(LockGroup::ConnShard, i)
    }

    /// Node `n`'s cache lock.
    pub const fn cache(n: u32) -> Self {
        Self::new(LockGroup::Cache, n)
    }

    /// Node `n`'s control-session transmit lock.
    pub const fn control(n: u32) -> Self {
        Self::new(LockGroup::Control, n)
    }

    /// Node `n`'s local single-flight table.
    pub const fn disk_flights(n: u32) -> Self {
        Self::new(LockGroup::DiskFlights, n)
    }

    /// Node `n`'s lateral single-flight table.
    pub const fn lateral_flights(n: u32) -> Self {
        Self::new(LockGroup::LateralFlights, n)
    }

    /// An in-flight fetch's outcome state.
    pub const fn flight() -> Self {
        Self::new(LockGroup::Flight, 0)
    }

    /// Node `n`'s emulated disk spindle.
    pub const fn disk_spindle(n: u32) -> Self {
        Self::new(LockGroup::DiskSpindle, n)
    }

    /// The idle lateral-connection pool toward peer `p`.
    pub const fn peer_pool(p: u32) -> Self {
        Self::new(LockGroup::PeerPool, p)
    }

    /// Node `n`'s cache-mirror set.
    pub const fn mirror(n: u32) -> Self {
        Self::new(LockGroup::Mirror, n)
    }

    /// Node `n`'s health breaker.
    pub const fn health(n: u32) -> Self {
        Self::new(LockGroup::Health, n)
    }

    /// The tier ownership ring.
    pub const fn ring() -> Self {
        Self::new(LockGroup::Ring, 0)
    }

    /// Front-end `f`'s gossip view.
    pub const fn tier_view(f: u32) -> Self {
        Self::new(LockGroup::TierView, f)
    }

    /// Front-end `f`'s gossip publish serializer.
    pub const fn gossip_publish(f: u32) -> Self {
        Self::new(LockGroup::GossipPublish, f)
    }

    /// The gossip stream write half toward peer `g`.
    pub const fn gossip_tx(g: u32) -> Self {
        Self::new(LockGroup::GossipTx, g)
    }

    /// Front-end `f`'s admission-session lock.
    pub const fn admit_session(f: u32) -> Self {
        Self::new(LockGroup::AdmitSession, f)
    }

    /// Front-end `f`'s admission-session write half.
    pub const fn session_write(f: u32) -> Self {
        Self::new(LockGroup::SessionWrite, f)
    }

    /// The Vip handoff machine.
    pub const fn vip_machine() -> Self {
        Self::new(LockGroup::VipMachine, 0)
    }

    /// Front-end `f`'s handoff endpoint.
    pub const fn be_endpoint(f: u32) -> Self {
        Self::new(LockGroup::BeEndpoint, f)
    }

    /// An ad-hoc class keyed by `name` (pass the same literal for the
    /// same logical lock).
    pub const fn other(name: &'static str) -> Self {
        Self::new(LockGroup::Other(name), 0)
    }

    /// The class's group.
    pub const fn group(self) -> LockGroup {
        self.group
    }

    /// The class's instance index.
    pub const fn index(self) -> u32 {
        self.index
    }

    fn is_unclassed(self) -> bool {
        matches!(self.group, LockGroup::Unclassed)
    }
}

impl Default for LockClass {
    fn default() -> Self {
        LockClass::UNCLASSED
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.group.key(), self.index)
    }
}

/// The workspace's declared lock partial order, as `(outer, inner)`
/// pairs: a lock of the `outer` group may be held while acquiring one of
/// the `inner` group, never the reverse (transitively). Mirrors the
/// ARCHITECTURE.md "Concurrency invariants" table; change them together.
pub const DECLARED_ORDER: &[(LockGroup, LockGroup)] = &[
    // Dispatcher core: a pipelined batch is decided under its connection
    // shard with one write acquisition per distinct mapping shard.
    (LockGroup::ConnShard, LockGroup::MappingShard),
    // Health gates and the cache mirror are consulted from inside
    // mapping-shard critical sections, never the other way around.
    (LockGroup::MappingShard, LockGroup::Health),
    (LockGroup::MappingShard, LockGroup::Mirror),
    // Gossip publish serializes, then reads ring ownership, then
    // snapshots the mapping under shard read locks.
    (LockGroup::GossipPublish, LockGroup::Ring),
    (LockGroup::Ring, LockGroup::MappingShard),
    // Node data path: feedback events are appended (and the join
    // handshake installs its session) under cache→control; flight
    // waiters register under the cache lock.
    (LockGroup::Cache, LockGroup::Control),
    (LockGroup::Cache, LockGroup::DiskFlights),
    (LockGroup::Cache, LockGroup::LateralFlights),
    // Tier admission: the per-session handshake lock brackets machine
    // transitions and control-frame writes.
    (LockGroup::AdmitSession, LockGroup::VipMachine),
    (LockGroup::AdmitSession, LockGroup::SessionWrite),
];

/// One entry of a thread's held stack.
#[derive(Clone, Copy)]
struct Held {
    class: LockClass,
    site: &'static Location<'static>,
}

/// First-observed witness of a lock-order graph edge.
#[derive(Clone)]
struct EdgeWitness {
    outer_site: &'static Location<'static>,
    inner_site: &'static Location<'static>,
    thread: String,
}

#[derive(Default)]
struct Graph {
    /// `edges[a]` holds every `b` such that `a → b` was observed, with
    /// the first witness.
    edges: HashMap<&'static str, HashMap<&'static str, EdgeWitness>>,
}

impl Graph {
    /// Whether a path `from ⇒ to` exists in the union of the observed
    /// edges and [`DECLARED_ORDER`].
    fn path_exists(&self, from: &'static str, to: &'static str) -> bool {
        let mut seen: HashSet<&'static str> = HashSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(n) {
                stack.extend(next.keys().copied());
            }
            for &(a, b) in DECLARED_ORDER {
                if a.key() == n {
                    stack.push(b.key());
                }
            }
        }
        false
    }

    /// Some edge on a path `from ⇒ to`, for witness reporting (prefers
    /// the direct edge).
    fn witness_on_path(
        &self,
        from: &'static str,
        to: &'static str,
    ) -> Option<(String, EdgeWitness)> {
        if let Some(w) = self.edges.get(from).and_then(|m| m.get(to)) {
            return Some((format!("{from} -> {to}"), w.clone()));
        }
        // Indirect: report the first observed edge out of `from` that
        // still reaches `to`.
        if let Some(next) = self.edges.get(from) {
            for (&mid, w) in next {
                if self.path_exists(mid, to) {
                    return Some((format!("{from} -> {mid} -> ... -> {to}"), w.clone()));
                }
            }
        }
        None
    }
}

static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Edges this thread has already pushed through the global graph —
    /// repeat acquisitions of a known-good nesting skip the global lock.
    static SEEN_EDGES: RefCell<HashSet<(&'static str, &'static str)>> =
        RefCell::new(HashSet::new());
}

fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => format!("{:?} ({name})", t.id()),
        None => format!("{:?}", t.id()),
    }
}

fn held_description(held: &[Held]) -> String {
    if held.is_empty() {
        return "  held: (nothing)".to_string();
    }
    held.iter()
        .map(|h| format!("  held: {} acquired at {}", h.class, h.site))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Records a blocking acquisition of `class` at `site`, enforcing the
/// ordering rules first.
///
/// # Panics
///
/// Panics with a witness on recursive acquisition, intra-group
/// violations, declared-order violations, or an observed-graph cycle.
pub fn on_acquire(class: LockClass, site: &'static Location<'static>) {
    if class.is_unclassed() {
        HELD.with(|h| h.borrow_mut().push(Held { class, site }));
        return;
    }
    let violation = HELD.with(|h| {
        let held = h.borrow();
        check_rules(&held, class, site)
    });
    if let Some(msg) = violation {
        panic!("{msg}");
    }
    HELD.with(|h| h.borrow_mut().push(Held { class, site }));
}

/// Records a *successful* `try_lock` of `class` at `site`. Held-stack
/// bookkeeping only: a try acquisition has a non-blocking failure exit,
/// so it is exempt from the ordering rules (and records no graph edges).
pub fn on_acquire_try(class: LockClass, site: &'static Location<'static>) {
    HELD.with(|h| h.borrow_mut().push(Held { class, site }));
}

/// Records the release of `class` (guard drop). Removes the most recent
/// matching held entry; releases need not be LIFO.
pub fn on_release(class: LockClass) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|e| e.class == class) {
            held.remove(pos);
        }
    });
}

/// Records the atomic release half of a `Condvar::wait`: the guard's
/// class is popped from the held stack while the thread is parked.
pub fn on_wait_release(class: LockClass) {
    on_release(class);
}

/// Records the re-acquisition half of a `Condvar::wait` wake-up. The
/// full rule set applies: re-acquiring after a wait is a genuine
/// blocking acquisition and participates in ordering like any other.
pub fn on_wait_reacquire(class: LockClass, site: &'static Location<'static>) {
    on_acquire(class, site);
}

/// The current thread's held classes (acquisition order), rendered as
/// `Group(index)` strings. Test observability hook.
pub fn held_names() -> Vec<String> {
    HELD.with(|h| h.borrow().iter().map(|e| e.class.to_string()).collect())
}

/// Clears the global observed graph (and this thread's edge cache).
/// Tests that deliberately seed inversions call this so one test's
/// poisoned graph cannot fail an unrelated test in the same process.
pub fn reset_observed_graph() {
    *GRAPH.lock().unwrap_or_else(|e| e.into_inner()) = None;
    SEEN_EDGES.with(|s| s.borrow_mut().clear());
}

/// Rule engine: returns the violation message, if any, for acquiring
/// `class` with `held` on this thread. Pure with respect to the held
/// stack; records new edges into the global graph as a side effect.
fn check_rules(
    held: &[Held],
    class: LockClass,
    site: &'static Location<'static>,
) -> Option<String> {
    let me = thread_label();
    for h in held {
        if h.class.is_unclassed() {
            continue;
        }
        if h.class == class {
            return Some(format!(
                "lockcheck: recursive acquisition of {class} at {site} on thread {me}\n\
                 {}\n  (same class already held — self-deadlock with non-reentrant locks)",
                held_description(held)
            ));
        }
        if h.class.group == class.group {
            if class.group.index_ordered() {
                if class.index <= h.class.index {
                    return Some(format!(
                        "lockcheck: non-ascending {} acquisition: {class} at {site} while \
                         holding {} (acquired at {}) on thread {me}\n{}\n  \
                         ({} shards must be acquired in strictly ascending index order — \
                         the write_set discipline)",
                        class.group.key(),
                        h.class,
                        h.site,
                        held_description(held),
                        class.group.key()
                    ));
                }
            } else {
                return Some(format!(
                    "lockcheck: same-group nesting: acquiring {class} at {site} while holding \
                     {} (acquired at {}) on thread {me}\n{}\n  \
                     (no code path may hold two {} locks at once; instance order is undefined)",
                    h.class,
                    h.site,
                    held_description(held),
                    class.group.key()
                ));
            }
        }
    }

    // Graph pass: one global-lock visit covering declared + observed
    // paths and edge insertion, skipped entirely when every (held →
    // class) edge is already in this thread's seen cache.
    let new_edges: Vec<&Held> = held
        .iter()
        .filter(|h| !h.class.is_unclassed() && h.class.group != class.group)
        .collect();
    if new_edges.is_empty() {
        return None;
    }
    let all_seen = SEEN_EDGES.with(|s| {
        let seen = s.borrow();
        new_edges
            .iter()
            .all(|h| seen.contains(&(h.class.group.key(), class.group.key())))
    });
    if all_seen {
        return None;
    }
    let mut g = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    let graph = g.get_or_insert_with(Graph::default);
    let to = class.group.key();
    for h in &new_edges {
        let from = h.class.group.key();
        if graph.path_exists(to, from) {
            // `class` is ordered before `from` (declared or observed),
            // yet this thread is acquiring it after: inversion.
            let prior = graph.witness_on_path(to, from);
            let prior_txt = match &prior {
                Some((path, w)) => format!(
                    "  conflicting prior order {path}: {} acquired at {} then inner lock at {} \
                     on thread {}",
                    path.split(' ').next().unwrap_or(""),
                    w.outer_site,
                    w.inner_site,
                    w.thread
                ),
                None => format!(
                    "  conflicting order {to} -> {from} is declared (DECLARED_ORDER), not observed"
                ),
            };
            let msg = format!(
                "lockcheck: lock-order inversion: acquiring {class} at {site} while holding \
                 {} (acquired at {}) on thread {me}\n{}\n{prior_txt}",
                h.class,
                h.site,
                held_description(held),
            );
            drop(g);
            return Some(msg);
        }
        graph
            .edges
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert_with(|| EdgeWitness {
                outer_site: h.site,
                inner_site: site,
                thread: me.clone(),
            });
    }
    drop(g);
    SEEN_EDGES.with(|s| {
        let mut seen = s.borrow_mut();
        for h in &new_edges {
            seen.insert((h.class.group.key(), class.group.key()));
        }
    });
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    /// Distinct ad-hoc groups per test keep the shared global graph from
    /// coupling tests run in one process.
    #[test]
    fn acquire_release_tracks_held_stack() {
        let a = LockClass::other("t1-a");
        let b = LockClass::other("t1-b");
        on_acquire(a, site());
        on_acquire(b, site());
        assert_eq!(held_names(), vec!["t1-a(0)", "t1-b(0)"]);
        on_release(a); // non-LIFO release is fine
        assert_eq!(held_names(), vec!["t1-b(0)"]);
        on_release(b);
        assert!(held_names().is_empty());
    }

    #[test]
    fn recursive_acquisition_panics() {
        let a = LockClass::other("t2-a");
        on_acquire(a, site());
        let err = std::panic::catch_unwind(|| on_acquire(a, site())).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("recursive acquisition"), "{msg}");
        on_release(a);
    }

    #[test]
    fn mapping_shards_enforce_ascending_order() {
        on_acquire(LockClass::mapping_shard(2), site());
        on_acquire(LockClass::mapping_shard(5), site()); // ascending: fine
        let err = std::panic::catch_unwind(|| on_acquire(LockClass::mapping_shard(3), site()))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("non-ascending MappingShard"), "{msg}");
        on_release(LockClass::mapping_shard(5));
        on_release(LockClass::mapping_shard(2));
    }

    #[test]
    fn same_group_nesting_panics_for_unordered_groups() {
        on_acquire(LockClass::cache(0), site());
        let err = std::panic::catch_unwind(|| on_acquire(LockClass::cache(1), site())).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("same-group nesting"), "{msg}");
        on_release(LockClass::cache(0));
    }

    #[test]
    fn declared_order_violation_panics_without_prior_observation() {
        // Control → Cache inverts the declared Cache → Control, even
        // though no thread ever nested them the allowed way first.
        on_acquire(LockClass::control(0), site());
        let err = std::panic::catch_unwind(|| on_acquire(LockClass::cache(0), site())).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("DECLARED_ORDER"), "{msg}");
        on_release(LockClass::control(0));
    }

    #[test]
    fn declared_order_violation_is_transitive() {
        // ConnShard → MappingShard → Health is declared; Health → ConnShard
        // inverts it through the transitive path.
        on_acquire(LockClass::health(0), site());
        let err =
            std::panic::catch_unwind(|| on_acquire(LockClass::conn_shard(0), site())).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        on_release(LockClass::health(0));
    }

    #[test]
    fn observed_inversion_panics_with_both_sites() {
        let a = LockClass::other("t6-a");
        let b = LockClass::other("t6-b");
        // First ordering: a → b (legal, recorded).
        on_acquire(a, site());
        let inner = Location::caller();
        on_acquire(b, inner);
        on_release(b);
        on_release(a);
        // Second ordering: b → a. No deadlock is possible here (both
        // acquisitions succeed immediately) — the inversion is caught
        // from the graph alone.
        on_acquire(b, site());
        let err = std::panic::catch_unwind(|| on_acquire(a, site())).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("conflicting prior order"), "{msg}");
        assert!(
            msg.contains(&inner.to_string()),
            "witness names the prior site: {msg}"
        );
        on_release(b);
    }

    #[test]
    fn try_acquisitions_are_exempt_but_tracked() {
        let a = LockClass::other("t7-a");
        let b = LockClass::other("t7-b");
        on_acquire(a, site());
        on_acquire(b, site());
        on_release(b);
        on_release(a);
        // The inverse nesting via try_lock records no edge and panics
        // nothing.
        on_acquire(b, site());
        on_acquire_try(a, site());
        assert_eq!(held_names(), vec!["t7-b(0)", "t7-a(0)"]);
        on_release(a);
        on_release(b);
    }

    #[test]
    fn unclassed_locks_are_exempt() {
        on_acquire(LockClass::UNCLASSED, site());
        on_acquire(LockClass::UNCLASSED, site()); // no recursion panic
        assert_eq!(held_names().len(), 2);
        on_release(LockClass::UNCLASSED);
        on_release(LockClass::UNCLASSED);
    }

    #[test]
    fn wait_pops_and_reacquire_pushes() {
        let a = LockClass::other("t9-a");
        on_acquire(a, site());
        assert_eq!(held_names(), vec!["t9-a(0)"]);
        on_wait_release(a);
        assert!(held_names().is_empty(), "held class popped across a wait");
        on_wait_reacquire(a, site());
        assert_eq!(held_names(), vec!["t9-a(0)"], "re-pushed exactly once");
        on_release(a);
    }
}
