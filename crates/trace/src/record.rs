//! Trace records: the unit of workload the whole reproduction consumes.
//!
//! A trace is a time-ordered sequence of HTTP GET requests, each identifying
//! the requesting client, the requested *target* (the paper's term for a URL
//! plus applicable arguments) and its response size. The paper drove both its
//! simulator and its prototype from two months of Rice University
//! departmental-server logs; this crate reads real logs in Common Log Format
//! and synthesizes Rice-like traces when real logs are unavailable.

use std::collections::BTreeMap;
use std::fmt;

use phttp_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a Web document (URL + arguments). Dense indices into the corpus.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TargetId(pub u32);

/// Identifies a client host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One logged HTTP request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time stamp.
    pub time: SimTime,
    /// Requesting client host.
    pub client: ClientId,
    /// Requested document.
    pub target: TargetId,
}

/// A complete workload: time-ordered requests plus the target corpus.
///
/// The corpus maps every [`TargetId`] to its response size in bytes; a target
/// has a single fixed size (static content, per the paper's scope).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
    /// `sizes[t.0 as usize]` is the response size of target `t` in bytes.
    sizes: Vec<u64>,
    /// Optional human-readable names (URLs), parallel to `sizes`. May be empty.
    names: Vec<String>,
}

impl Trace {
    /// Builds a trace, sorting requests by time (stable, preserving log order
    /// for equal stamps).
    ///
    /// # Panics
    ///
    /// Panics if any request references a target outside the corpus.
    pub fn new(mut requests: Vec<Request>, sizes: Vec<u64>) -> Self {
        for r in &requests {
            assert!(
                (r.target.0 as usize) < sizes.len(),
                "request references unknown target {}",
                r.target
            );
        }
        requests.sort_by_key(|r| r.time);
        Trace {
            requests,
            sizes,
            names: Vec::new(),
        }
    }

    /// Builds a trace with URL names parallel to the size table.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != sizes.len()` or a request references an
    /// unknown target.
    pub fn with_names(requests: Vec<Request>, sizes: Vec<u64>, names: Vec<String>) -> Self {
        assert_eq!(names.len(), sizes.len(), "names/sizes length mismatch");
        let mut t = Trace::new(requests, sizes);
        t.names = names;
        t
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, in non-decreasing time order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of targets in the corpus (including never-requested ones).
    pub fn num_targets(&self) -> usize {
        self.sizes.len()
    }

    /// Response size of `target` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the target is not in the corpus.
    pub fn size_of(&self, target: TargetId) -> u64 {
        self.sizes[target.0 as usize]
    }

    /// URL of `target`, if names were recorded.
    pub fn name_of(&self, target: TargetId) -> Option<&str> {
        self.names.get(target.0 as usize).map(String::as_str)
    }

    /// Total bytes across the corpus (the paper's "data set ... covering N GB").
    pub fn corpus_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Total bytes across distinct *requested* targets (the working set).
    pub fn working_set_bytes(&self) -> u64 {
        let mut seen = vec![false; self.sizes.len()];
        let mut total = 0;
        for r in &self.requests {
            let i = r.target.0 as usize;
            if !seen[i] {
                seen[i] = true;
                total += self.sizes[i];
            }
        }
        total
    }

    /// Number of distinct targets requested at least once.
    pub fn distinct_targets(&self) -> usize {
        let mut seen = vec![false; self.sizes.len()];
        let mut n = 0;
        for r in &self.requests {
            let i = r.target.0 as usize;
            if !seen[i] {
                seen[i] = true;
                n += 1;
            }
        }
        n
    }

    /// Total response bytes that serving the whole trace transfers.
    pub fn total_response_bytes(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| self.sizes[r.target.0 as usize])
            .sum()
    }

    /// Mean response size over requests (not over targets), in bytes.
    ///
    /// The paper leans on this statistic: back-end forwarding is competitive
    /// because "the average content size in today's Web traffic" is small.
    pub fn mean_response_bytes(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.total_response_bytes() as f64 / self.requests.len() as f64
    }

    /// The time stamp of the first request, or zero for an empty trace.
    pub fn start_time(&self) -> SimTime {
        self.requests
            .first()
            .map(|r| r.time)
            .unwrap_or(SimTime::ZERO)
    }

    /// The time stamp of the last request, or zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.requests
            .last()
            .map(|r| r.time)
            .unwrap_or(SimTime::ZERO)
    }

    /// Cache-coverage curve: minimum cache bytes needed to cover each of the
    /// given request-fractions, assuming the cache holds the most-requested
    /// targets (the paper's "needs N MB of memory to cover P% of all
    /// requests" statistic).
    ///
    /// `fractions` entries must be in `(0, 1]`. Returns one byte count per
    /// fraction, in the same order.
    pub fn coverage_curve(&self, fractions: &[f64]) -> Vec<u64> {
        let mut counts: BTreeMap<TargetId, u64> = BTreeMap::new();
        for r in &self.requests {
            *counts.entry(r.target).or_insert(0) += 1;
        }
        // Most-requested first; break count ties by smaller size first (a
        // cache aiming at request coverage prefers cheap popular targets).
        let mut by_pop: Vec<(TargetId, u64)> = counts.into_iter().collect();
        by_pop.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(self.size_of(a.0).cmp(&self.size_of(b.0)))
                .then(a.0.cmp(&b.0))
        });
        let total = self.requests.len() as f64;
        let mut out = Vec::with_capacity(fractions.len());
        for &f in fractions {
            assert!(f > 0.0 && f <= 1.0, "fraction {f} out of (0, 1]");
            let need = (f * total).ceil() as u64;
            let mut covered = 0u64;
            let mut bytes = 0u64;
            for &(t, c) in &by_pop {
                if covered >= need {
                    break;
                }
                covered += c;
                bytes += self.size_of(t);
            }
            out.push(bytes);
        }
        out
    }

    /// Returns a sub-trace with only the first `n` requests (corpus shared).
    pub fn prefix(&self, n: usize) -> Trace {
        Trace {
            requests: self.requests[..n.min(self.requests.len())].to_vec(),
            sizes: self.sizes.clone(),
            names: self.names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn simple_trace() -> Trace {
        let reqs = vec![
            Request {
                time: t(30),
                client: ClientId(0),
                target: TargetId(2),
            },
            Request {
                time: t(10),
                client: ClientId(1),
                target: TargetId(0),
            },
            Request {
                time: t(20),
                client: ClientId(0),
                target: TargetId(0),
            },
        ];
        Trace::new(reqs, vec![100, 200, 300])
    }

    #[test]
    fn requests_are_sorted_by_time() {
        let tr = simple_trace();
        let times: Vec<u64> = tr.requests().iter().map(|r| r.time.as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(tr.start_time(), t(10));
        assert_eq!(tr.end_time(), t(30));
    }

    #[test]
    fn corpus_and_working_set_accounting() {
        let tr = simple_trace();
        assert_eq!(tr.corpus_bytes(), 600);
        // Targets 0 and 2 requested: 100 + 300.
        assert_eq!(tr.working_set_bytes(), 400);
        assert_eq!(tr.distinct_targets(), 2);
        assert_eq!(tr.total_response_bytes(), 100 + 100 + 300);
        assert!((tr.mean_response_bytes() - 500.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown target")]
    fn rejects_out_of_corpus_target() {
        let reqs = vec![Request {
            time: t(0),
            client: ClientId(0),
            target: TargetId(9),
        }];
        let _ = Trace::new(reqs, vec![10]);
    }

    #[test]
    fn coverage_curve_monotone_and_exact() {
        // Target 0 requested 3x (100 B), target 1 once (200 B).
        let reqs = vec![
            Request {
                time: t(0),
                client: ClientId(0),
                target: TargetId(0),
            },
            Request {
                time: t(1),
                client: ClientId(0),
                target: TargetId(0),
            },
            Request {
                time: t(2),
                client: ClientId(0),
                target: TargetId(0),
            },
            Request {
                time: t(3),
                client: ClientId(0),
                target: TargetId(1),
            },
        ];
        let tr = Trace::new(reqs, vec![100, 200]);
        let cov = tr.coverage_curve(&[0.5, 0.75, 1.0]);
        // 50% of 4 = 2 requests -> target 0 alone (100 B) covers 3.
        assert_eq!(cov, vec![100, 100, 300]);
    }

    #[test]
    fn empty_trace_is_safe() {
        let tr = Trace::new(Vec::new(), vec![1, 2]);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_response_bytes(), 0.0);
        assert_eq!(tr.working_set_bytes(), 0);
        assert_eq!(tr.start_time(), SimTime::ZERO);
    }

    #[test]
    fn prefix_truncates() {
        let tr = simple_trace();
        assert_eq!(tr.prefix(2).len(), 2);
        assert_eq!(tr.prefix(99).len(), 3);
        assert_eq!(tr.prefix(2).num_targets(), 3);
    }
}
