//! Common Log Format (CLF) parsing, so real server logs can drive the
//! simulator and the prototype exactly as the Rice traces drove the paper's.
//!
//! A CLF line looks like:
//!
//! ```text
//! ricevm1.rice.edu - - [12/Mar/1998:09:15:36 -0600] "GET /~fac/pic.gif HTTP/1.0" 200 2326
//! ```
//!
//! Combined Log Format lines (with trailing quoted referer and user-agent
//! fields) are accepted too; the extra fields are ignored.
//!
//! The parser interns client hosts and request targets into dense
//! [`ClientId`]/[`TargetId`] spaces, takes a target's size to be the largest
//! byte count observed for it (entries logged `-`, e.g. 304 responses, do not
//! shrink it), and normalizes time stamps so the earliest request is at
//! simulated time zero while preserving all gaps — which is all the
//! reconstruction heuristic needs.

use std::collections::HashMap;
use std::fmt;

use phttp_simcore::SimTime;

use crate::record::{ClientId, Request, TargetId, Trace};

/// Why a log line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClfError {
    /// The line does not have the seven CLF fields.
    Malformed,
    /// The `[date]` field failed to parse.
    BadDate,
    /// The request field is not `"METHOD URI VERSION"`.
    BadRequest,
    /// The method is not GET (HEAD/POST/... are outside the paper's scope).
    NotGet,
    /// The status code is not a success (2xx) or not-modified (304).
    Unsuccessful,
}

impl fmt::Display for ClfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClfError::Malformed => "malformed CLF line",
            ClfError::BadDate => "unparseable date field",
            ClfError::BadRequest => "unparseable request field",
            ClfError::NotGet => "non-GET method",
            ClfError::Unsuccessful => "unsuccessful status code",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ClfError {}

/// One successfully parsed log entry, before interning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfEntry {
    /// Client host or IP, verbatim.
    pub host: String,
    /// Seconds since the Unix epoch (UTC).
    pub epoch_secs: i64,
    /// Request URI (path + query), verbatim.
    pub uri: String,
    /// HTTP status code.
    pub status: u16,
    /// Response bytes, if logged.
    pub bytes: Option<u64>,
}

/// Parses a single CLF line.
///
/// # Examples
///
/// ```
/// use phttp_trace::clf::parse_line;
///
/// let e = parse_line(
///     r#"host.example - - [12/Mar/1998:09:15:36 -0600] "GET /pic.gif HTTP/1.0" 200 2326"#,
/// )
/// .unwrap();
/// assert_eq!(e.uri, "/pic.gif");
/// assert_eq!(e.bytes, Some(2326));
/// ```
pub fn parse_line(line: &str) -> Result<ClfEntry, ClfError> {
    let line = line.trim();
    // host ident authuser
    let mut rest = line;
    let host = take_token(&mut rest).ok_or(ClfError::Malformed)?.to_owned();
    let _ident = take_token(&mut rest).ok_or(ClfError::Malformed)?;
    let _user = take_token(&mut rest).ok_or(ClfError::Malformed)?;

    // [date]
    let rest2 = rest.trim_start();
    let date_start = rest2.strip_prefix('[').ok_or(ClfError::Malformed)?;
    let date_end = date_start.find(']').ok_or(ClfError::Malformed)?;
    let date_str = &date_start[..date_end];
    let epoch_secs = parse_clf_date(date_str).ok_or(ClfError::BadDate)?;
    let rest3 = date_start[date_end + 1..].trim_start();

    // "request" — find the FIRST closing quote: Combined Log Format lines
    // carry further quoted fields (referer, user-agent) after the status
    // and byte count, and request URIs cannot contain a raw quote (it must
    // be percent-encoded).
    let req_start = rest3.strip_prefix('"').ok_or(ClfError::Malformed)?;
    let req_end = req_start.find('"').ok_or(ClfError::Malformed)?;
    let req_str = &req_start[..req_end];
    let mut parts = req_str.split_ascii_whitespace();
    let method = parts.next().ok_or(ClfError::BadRequest)?;
    let uri = parts.next().ok_or(ClfError::BadRequest)?.to_owned();
    // The protocol version is optional in HTTP/0.9-era logs.
    if method != "GET" {
        return Err(ClfError::NotGet);
    }

    // status bytes
    let tail = req_start[req_end + 1..].trim_start();
    let mut tail_parts = tail.split_ascii_whitespace();
    let status: u16 = tail_parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ClfError::Malformed)?;
    let bytes_field = tail_parts.next().ok_or(ClfError::Malformed)?;
    let bytes = bytes_field.parse::<u64>().ok();

    if !(200..300).contains(&status) && status != 304 {
        return Err(ClfError::Unsuccessful);
    }

    Ok(ClfEntry {
        host,
        epoch_secs,
        uri,
        status,
        bytes,
    })
}

fn take_token<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let s = rest.trim_start();
    if s.is_empty() {
        return None;
    }
    let end = s.find(char::is_whitespace).unwrap_or(s.len());
    let (tok, r) = s.split_at(end);
    *rest = r;
    Some(tok)
}

/// Parses `dd/Mon/yyyy:HH:MM:SS +hhmm` into seconds since the Unix epoch.
fn parse_clf_date(s: &str) -> Option<i64> {
    // Split "12/Mar/1998:09:15:36 -0600".
    let (dt, tz) = s.split_once(' ')?;
    let mut it = dt.splitn(3, '/');
    let day: i64 = it.next()?.parse().ok()?;
    let month = month_number(it.next()?)?;
    let rest = it.next()?;
    let mut it2 = rest.splitn(4, ':');
    let year: i64 = it2.next()?.parse().ok()?;
    let hh: i64 = it2.next()?.parse().ok()?;
    let mm: i64 = it2.next()?.parse().ok()?;
    let ss: i64 = it2.next()?.parse().ok()?;
    if !(1..=31).contains(&day) || hh > 23 || mm > 59 || ss > 60 {
        return None;
    }

    let days = days_from_civil(year, month, day);
    let mut secs = days * 86_400 + hh * 3_600 + mm * 60 + ss;

    // Time zone: ±hhmm. The logged time is local; subtract the offset to get UTC.
    let tz = tz.trim();
    if tz.len() == 5 {
        let sign = match tz.as_bytes()[0] {
            b'+' => 1,
            b'-' => -1,
            _ => return None,
        };
        let oh: i64 = tz[1..3].parse().ok()?;
        let om: i64 = tz[3..5].parse().ok()?;
        secs -= sign * (oh * 3_600 + om * 60);
    } else {
        return None;
    }
    Some(secs)
}

fn month_number(m: &str) -> Option<i64> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS
        .iter()
        .position(|&x| x.eq_ignore_ascii_case(m))
        .map(|i| i as i64 + 1)
}

/// Days from the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Summary of a log-parsing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Lines accepted into the trace.
    pub accepted: usize,
    /// Lines skipped, by cause. Indexed via [`ClfError`] discriminants in
    /// `skipped()` order: malformed, bad date, bad request, non-GET, unsuccessful.
    pub skipped_malformed: usize,
    /// Lines whose date field failed to parse.
    pub skipped_bad_date: usize,
    /// Lines whose request field failed to parse.
    pub skipped_bad_request: usize,
    /// Lines with a non-GET method.
    pub skipped_not_get: usize,
    /// Lines with an unsuccessful status.
    pub skipped_unsuccessful: usize,
}

impl ParseStats {
    /// Total skipped lines.
    pub fn skipped(&self) -> usize {
        self.skipped_malformed
            + self.skipped_bad_date
            + self.skipped_bad_request
            + self.skipped_not_get
            + self.skipped_unsuccessful
    }

    fn record(&mut self, e: &ClfError) {
        match e {
            ClfError::Malformed => self.skipped_malformed += 1,
            ClfError::BadDate => self.skipped_bad_date += 1,
            ClfError::BadRequest => self.skipped_bad_request += 1,
            ClfError::NotGet => self.skipped_not_get += 1,
            ClfError::Unsuccessful => self.skipped_unsuccessful += 1,
        }
    }
}

/// Builds a [`Trace`] from an iterator of CLF lines (e.g. file lines).
///
/// Client hosts and URIs are interned; target sizes take the maximum logged
/// byte count per URI; time stamps are normalized so the earliest accepted
/// entry is simulated time zero. Unusable lines are skipped and counted.
pub fn parse_log<I, S>(lines: I) -> (Trace, ParseStats)
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut stats = ParseStats::default();
    let mut clients: HashMap<String, ClientId> = HashMap::new();
    let mut targets: HashMap<String, TargetId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut sizes: Vec<u64> = Vec::new();
    let mut raw: Vec<(i64, ClientId, TargetId)> = Vec::new();

    for line in lines {
        let line = line.as_ref();
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(e) => {
                stats.accepted += 1;
                let next_client = ClientId(clients.len() as u32);
                let client = *clients.entry(e.host).or_insert(next_client);
                let target = match targets.get(&e.uri) {
                    Some(&t) => t,
                    None => {
                        let t = TargetId(sizes.len() as u32);
                        targets.insert(e.uri.clone(), t);
                        names.push(e.uri);
                        sizes.push(0);
                        t
                    }
                };
                if let Some(b) = e.bytes {
                    let slot = &mut sizes[target.0 as usize];
                    *slot = (*slot).max(b);
                }
                raw.push((e.epoch_secs, client, target));
            }
            Err(err) => stats.record(&err),
        }
    }

    let t0 = raw.iter().map(|&(t, _, _)| t).min().unwrap_or(0);
    let requests = raw
        .into_iter()
        .map(|(t, client, target)| Request {
            time: SimTime::from_micros(((t - t0).max(0) as u64) * 1_000_000),
            client,
            target,
        })
        .collect();
    (Trace::with_names(requests, sizes, names), stats)
}

/// Renders one trace request as a CLF line (the parser's inverse).
///
/// Times are rendered at 1-second resolution relative to an arbitrary epoch
/// base, exactly the fidelity real logs give the reconstruction heuristics.
/// Useful for exporting synthetic traces to tools that consume server logs,
/// and for round-trip testing.
pub fn format_entry(trace: &Trace, r: &Request, epoch_base: i64) -> String {
    let epoch = epoch_base + (r.time.as_micros() / 1_000_000) as i64;
    let days = epoch.div_euclid(86_400);
    let secs = epoch.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let uri = trace
        .name_of(r.target)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("/t/{}", r.target.0));
    format!(
        "client{}.example - - [{:02}/{}/{}:{:02}:{:02}:{:02} +0000] \"GET {} HTTP/1.0\" 200 {}",
        r.client.0,
        d,
        month_name(m),
        y,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60,
        uri,
        trace.size_of(r.target),
    )
}

/// Renders an entire trace as CLF lines in time order.
pub fn format_log(trace: &Trace, epoch_base: i64) -> Vec<String> {
    trace
        .requests()
        .iter()
        .map(|r| format_entry(trace, r, epoch_base))
        .collect()
}

/// Civil date from days since the Unix epoch (inverse of `days_from_civil`,
/// Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn month_name(m: i64) -> &'static str {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS[(m - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str =
        r#"cs.rice.edu - - [12/Mar/1998:09:15:36 -0600] "GET /pic.gif HTTP/1.0" 200 2326"#;

    #[test]
    fn parses_canonical_line() {
        let e = parse_line(GOOD).unwrap();
        assert_eq!(e.host, "cs.rice.edu");
        assert_eq!(e.uri, "/pic.gif");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(2326));
    }

    #[test]
    fn date_epoch_is_correct() {
        // 1998-03-12 09:15:36 -0600 == 1998-03-12 15:15:36 UTC == 889715736.
        let e = parse_line(GOOD).unwrap();
        assert_eq!(e.epoch_secs, 889_715_736);
    }

    #[test]
    fn days_from_civil_known_values() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn rejects_post_and_errors() {
        let post = GOOD.replace("GET", "POST");
        assert_eq!(parse_line(&post), Err(ClfError::NotGet));
        let err404 = GOOD.replace(" 200 ", " 404 ");
        assert_eq!(parse_line(&err404), Err(ClfError::Unsuccessful));
        assert_eq!(parse_line("garbage"), Err(ClfError::Malformed));
    }

    #[test]
    fn parses_combined_log_format() {
        // Trailing referer/user-agent fields (Combined Log Format) must not
        // confuse the request-field scanner.
        let line = r#"h - - [12/Mar/1998:09:15:36 -0600] "GET /pic.gif HTTP/1.0" 200 2326 "http://ref.example/a" "Mozilla/4.08 [en] (X11; I; FreeBSD)""#;
        let e = parse_line(line).unwrap();
        assert_eq!(e.uri, "/pic.gif");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(2326));
    }

    #[test]
    fn combined_format_with_quotes_in_user_agent() {
        let line = r#"h - - [12/Mar/1998:09:15:36 -0600] "GET /x HTTP/1.1" 200 10 "-" "weird "agent" string""#;
        let e = parse_line(line).unwrap();
        assert_eq!(e.uri, "/x");
        assert_eq!(e.bytes, Some(10));
    }

    #[test]
    fn accepts_304_with_dash_bytes() {
        let line = r#"h - - [12/Mar/1998:09:15:36 -0600] "GET /pic.gif HTTP/1.0" 304 -"#;
        let e = parse_line(line).unwrap();
        assert_eq!(e.status, 304);
        assert_eq!(e.bytes, None);
    }

    #[test]
    fn positive_timezone_offset() {
        let line = r#"h - - [12/Mar/1998:09:15:36 +0100] "GET /x HTTP/1.0" 200 10"#;
        let e = parse_line(line).unwrap();
        // 09:15:36 +0100 == 08:15:36 UTC.
        assert_eq!(e.epoch_secs % 86_400, 8 * 3_600 + 15 * 60 + 36);
    }

    #[test]
    fn parse_log_interns_and_normalizes() {
        let lines = [
            r#"a - - [12/Mar/1998:00:00:10 +0000] "GET /x HTTP/1.0" 200 100"#,
            r#"b - - [12/Mar/1998:00:00:05 +0000] "GET /y HTTP/1.0" 200 300"#,
            r#"a - - [12/Mar/1998:00:00:20 +0000] "GET /x HTTP/1.0" 200 150"#,
            r#"junk"#,
        ];
        let (trace, stats) = parse_log(lines);
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.skipped(), 1);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.num_targets(), 2);
        // Size takes the max across entries.
        let x = trace
            .requests()
            .iter()
            .find(|r| trace.name_of(r.target) == Some("/x"))
            .unwrap()
            .target;
        assert_eq!(trace.size_of(x), 150);
        // Earliest request (b's) is normalized to time zero.
        assert_eq!(trace.start_time(), SimTime::ZERO);
        assert_eq!(trace.end_time(), SimTime::from_secs(15));
    }

    #[test]
    fn civil_from_days_inverts_days_from_civil() {
        for &(y, m, d) in &[(1970, 1, 1), (1998, 3, 12), (2000, 2, 29), (2026, 12, 31)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
    }

    #[test]
    fn format_then_parse_round_trips() {
        let reqs = vec![
            Request {
                time: SimTime::from_secs(0),
                client: ClientId(3),
                target: TargetId(0),
            },
            Request {
                time: SimTime::from_secs(90),
                client: ClientId(1),
                target: TargetId(1),
            },
        ];
        let trace = Trace::new(reqs, vec![1234, 999]);
        let lines = format_log(&trace, 889_660_800); // 1998-03-12 00:00 UTC
        let (parsed, stats) = parse_log(&lines);
        assert_eq!(stats.accepted, 2);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.total_response_bytes(), 1234 + 999);
        assert_eq!(parsed.end_time(), SimTime::from_secs(90));
    }

    #[test]
    fn empty_log_is_empty_trace() {
        let (trace, stats) = parse_log(Vec::<String>::new());
        assert!(trace.is_empty());
        assert_eq!(stats.accepted, 0);
    }
}
