//! Synthetic Rice-like trace generation.
//!
//! The paper's workload is two months of Rice University departmental-server
//! logs, which are not publicly available. This generator produces traces
//! with the structural properties the paper's results depend on (DESIGN.md
//! §6.1):
//!
//! * **Zipf-like page popularity** (Arlitt & Williamson invariants, the
//!   paper's reference \[3\]);
//! * **small mean response size** — heavy-tailed sizes with a mean around
//!   10 KB, the regime in which the paper argues back-end forwarding is
//!   competitive;
//! * **page structure**: a container document followed by its embedded
//!   objects from the same client within the pipelining window, so P-HTTP
//!   reconstruction produces realistic connections and batches;
//! * **a working set** larger than one node's cache and smaller than a
//!   mid-size cluster's aggregate cache — the regime where LARD's cache
//!   aggregation matters.
//!
//! Generation is fully deterministic under [`SynthConfig::seed`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use phttp_simcore::{Exp, LogNormal, Pareto, SimDuration, SimTime, Zipf};

use crate::record::{ClientId, Request, TargetId, Trace};

/// Parameters of the synthetic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed; equal seeds yield identical traces.
    pub seed: u64,
    /// Number of container (HTML) documents.
    pub num_pages: usize,
    /// Mean number of embedded objects per page (geometric, so pages vary).
    pub embeds_per_page_mean: f64,
    /// Number of distinct client hosts.
    pub num_clients: usize,
    /// Total page views to emit.
    pub num_page_views: usize,
    /// Zipf exponent of page popularity (≈1.0 for web workloads).
    pub zipf_exponent: f64,
    /// Log-normal `mu` for HTML sizes (ln bytes).
    pub html_mu: f64,
    /// Log-normal `sigma` for HTML sizes.
    pub html_sigma: f64,
    /// Log-normal `mu` for embedded-object sizes (ln bytes).
    pub embed_mu: f64,
    /// Log-normal `sigma` for embedded-object sizes.
    pub embed_sigma: f64,
    /// Fraction of targets drawn from the Pareto tail instead.
    pub tail_fraction: f64,
    /// Pareto scale (minimum size) of the tail, bytes.
    pub tail_scale: f64,
    /// Pareto shape of the tail; smaller = heavier.
    pub tail_alpha: f64,
    /// Upper clamp on any target size, bytes. A Pareto tail with
    /// `alpha < 2` has infinite variance; real servers also have a largest
    /// file. Keeps small corpora from being dominated by one monster file.
    pub max_target_bytes: u64,
    /// Mean page views per client session (geometric).
    pub views_per_session_mean: f64,
    /// Mean think time between page views in a session, seconds. Around the
    /// 15 s idle-close threshold so reconstructed connections vary between
    /// one and several page views.
    pub think_time_mean_s: f64,
    /// Delay between receiving the container page and the first embedded
    /// request (parse time), seconds.
    pub parse_delay_s: f64,
    /// Mean spacing between embedded-object requests, seconds (well under
    /// the 1 s batch window so embeds pipeline into one batch).
    pub embed_gap_mean_s: f64,
    /// Session arrival rate across all clients, sessions/second.
    pub session_rate_per_s: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 1999,
            num_pages: 2_000,
            embeds_per_page_mean: 4.0,
            num_clients: 2_000,
            num_page_views: 40_000,
            zipf_exponent: 1.0,
            html_mu: 8.7, // median ≈ 6 KB
            html_sigma: 0.7,
            embed_mu: 8.0, // median ≈ 3 KB
            embed_sigma: 1.0,
            tail_fraction: 0.02,
            tail_scale: 30_000.0,
            tail_alpha: 1.2,
            max_target_bytes: 1024 * 1024,
            views_per_session_mean: 4.0,
            // Most inter-view dwell times exceed the 15 s idle-close
            // threshold (human page-reading time), so a typical persistent
            // connection carries one page view and a meaningful minority
            // span several views — the paper-era connection shape.
            think_time_mean_s: 60.0,
            parse_delay_s: 0.25,
            embed_gap_mean_s: 0.05,
            // With 2000 clients, one client's *sessions* are typically far
            // apart, so distinct sessions rarely merge into one connection.
            session_rate_per_s: 15.0,
        }
    }
}

impl SynthConfig {
    /// A scaled-down configuration for unit tests and CI (fast to generate
    /// and simulate, same structure).
    pub fn small() -> Self {
        SynthConfig {
            seed: 7,
            num_pages: 200,
            num_clients: 300,
            num_page_views: 6_000,
            session_rate_per_s: 8.0,
            max_target_bytes: 256 * 1024,
            ..SynthConfig::default()
        }
    }
}

/// The generated corpus structure: which targets make up each page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// `pages[i]` lists the embedded-object targets of page `i`; the page's
    /// own HTML target is `TargetId(i)`.
    pub pages: Vec<Vec<TargetId>>,
    /// Size of every target in bytes, indexed by `TargetId`.
    pub sizes: Vec<u64>,
}

impl Corpus {
    /// Builds the corpus deterministically from the configuration.
    pub fn build(cfg: &SynthConfig, rng: &mut SmallRng) -> Corpus {
        assert!(cfg.num_pages > 0, "need at least one page");
        let html_dist = LogNormal::new(cfg.html_mu, cfg.html_sigma);
        let embed_dist = LogNormal::new(cfg.embed_mu, cfg.embed_sigma);
        let tail = Pareto::new(cfg.tail_scale, cfg.tail_alpha);

        let mut sizes: Vec<u64> = Vec::new();
        // Page HTML targets occupy ids 0..num_pages.
        for _ in 0..cfg.num_pages {
            sizes.push(sample_size(
                &html_dist,
                &tail,
                cfg.tail_fraction,
                cfg.max_target_bytes,
                rng,
            ));
        }
        // Embedded objects get ids after the pages.
        let mut pages = Vec::with_capacity(cfg.num_pages);
        for _ in 0..cfg.num_pages {
            let k = geometric(cfg.embeds_per_page_mean, rng);
            let mut embeds = Vec::with_capacity(k);
            for _ in 0..k {
                let id = TargetId(sizes.len() as u32);
                sizes.push(sample_size(
                    &embed_dist,
                    &tail,
                    cfg.tail_fraction,
                    cfg.max_target_bytes,
                    rng,
                ));
                embeds.push(id);
            }
            pages.push(embeds);
        }
        Corpus { pages, sizes }
    }

    /// Number of targets (pages + embedded objects).
    pub fn num_targets(&self) -> usize {
        self.sizes.len()
    }

    /// Total corpus bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }
}

/// Draws a size from the body/tail mixture, clamped to `[64, max]` bytes.
fn sample_size(
    body: &LogNormal,
    tail: &Pareto,
    tail_frac: f64,
    max: u64,
    rng: &mut SmallRng,
) -> u64 {
    let x = if rng.gen::<f64>() < tail_frac {
        tail.sample(rng)
    } else {
        body.sample(rng)
    };
    (x.round() as u64).clamp(64, max.max(64))
}

/// Geometric sample with the given mean, at least 1.
fn geometric(mean: f64, rng: &mut SmallRng) -> usize {
    debug_assert!(mean >= 1.0);
    // P(stop) chosen so the expected count is `mean`.
    let p = 1.0 / mean;
    let mut n = 1;
    while rng.gen::<f64>() > p && n < 64 {
        n += 1;
    }
    n
}

/// Generates a synthetic trace.
///
/// # Examples
///
/// ```
/// use phttp_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig::small());
/// assert!(!trace.is_empty());
/// // Regenerating with the same config is bit-identical.
/// let again = generate(&SynthConfig::small());
/// assert_eq!(trace.requests(), again.requests());
/// ```
pub fn generate(cfg: &SynthConfig) -> Trace {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let corpus = Corpus::build(cfg, &mut rng);
    let popularity = Zipf::new(cfg.num_pages, cfg.zipf_exponent);
    let session_gap = Exp::new(1.0 / cfg.session_rate_per_s);
    let think = Exp::new(cfg.think_time_mean_s);
    let embed_gap = Exp::new(cfg.embed_gap_mean_s);

    let mut requests: Vec<Request> = Vec::new();
    let mut session_start = 0.0f64;
    let mut views_emitted = 0usize;

    while views_emitted < cfg.num_page_views {
        session_start += session_gap.sample(&mut rng);
        let client = ClientId(rng.gen_range(0..cfg.num_clients as u32));
        let views =
            geometric(cfg.views_per_session_mean, &mut rng).min(cfg.num_page_views - views_emitted);
        let mut t = session_start;
        for _ in 0..views {
            let page = popularity.sample(&mut rng);
            requests.push(Request {
                time: SimTime::ZERO + SimDuration::from_secs_f64(t),
                client,
                target: TargetId(page as u32),
            });
            let mut obj_t = t + cfg.parse_delay_s;
            for &embed in &corpus.pages[page] {
                obj_t += embed_gap.sample(&mut rng);
                requests.push(Request {
                    time: SimTime::ZERO + SimDuration::from_secs_f64(obj_t),
                    client,
                    target: embed,
                });
            }
            views_emitted += 1;
            t = obj_t + think.sample(&mut rng);
        }
    }

    Trace::new(requests, corpus.sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phttp::{reconstruct, SessionConfig};

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&SynthConfig::small());
        let b = generate(&SynthConfig::small());
        assert_eq!(a.requests(), b.requests());
        let mut cfg = SynthConfig::small();
        cfg.seed = 8;
        let c = generate(&cfg);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn mean_response_size_is_web_like() {
        let trace = generate(&SynthConfig::default());
        let mean_kb = trace.mean_response_bytes() / 1024.0;
        // The paper's anchor: today's average content size is under ~13 KB.
        assert!(
            (2.0..=14.0).contains(&mean_kb),
            "mean response size {mean_kb:.1} KB out of the web-like range"
        );
    }

    #[test]
    fn working_set_exceeds_single_node_cache() {
        let trace = generate(&SynthConfig::default());
        let ws_mb = trace.working_set_bytes() as f64 / (1024.0 * 1024.0);
        // DESIGN.md: default node cache is 32 MB; the working set must not
        // fit one node but must fit a handful of nodes.
        assert!(ws_mb > 40.0, "working set only {ws_mb:.1} MB");
        assert!(ws_mb < 400.0, "working set too large: {ws_mb:.1} MB");
    }

    #[test]
    fn page_views_produce_pipelined_batches() {
        let trace = generate(&SynthConfig::small());
        let conns = reconstruct(&trace, SessionConfig::default());
        assert!(!conns.connections.is_empty());
        // With ~5 embeds per page there must be several requests per
        // connection on average.
        let rpc = conns.mean_requests_per_connection();
        assert!(rpc > 2.0, "requests/connection {rpc:.2} too low");
        // Some connection must contain a multi-request batch (pipelining).
        let has_pipelining = conns
            .connections
            .iter()
            .any(|c| c.batches.iter().any(|b| b.len() > 1));
        assert!(has_pipelining);
    }

    #[test]
    fn all_requests_reference_valid_targets() {
        let trace = generate(&SynthConfig::small());
        for r in trace.requests() {
            assert!((r.target.0 as usize) < trace.num_targets());
            let _ = trace.size_of(r.target);
        }
    }

    #[test]
    fn corpus_structure_is_consistent() {
        let cfg = SynthConfig::small();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let corpus = Corpus::build(&cfg, &mut rng);
        assert_eq!(corpus.pages.len(), cfg.num_pages);
        // Every embed id points past the page range and into the size table.
        for embeds in &corpus.pages {
            for e in embeds {
                assert!((e.0 as usize) >= cfg.num_pages);
                assert!((e.0 as usize) < corpus.num_targets());
            }
        }
        assert!(corpus.total_bytes() > 0);
    }

    #[test]
    fn popularity_is_skewed() {
        let trace = generate(&SynthConfig::default());
        let mut counts = vec![0u64; trace.num_targets()];
        for r in trace.requests() {
            counts[r.target.0 as usize] += 1;
        }
        let mut sorted: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top10pct: u64 = sorted.iter().take(sorted.len() / 10).sum();
        // Zipf-ish: the top decile of targets draws most of the traffic.
        assert!(
            top10pct as f64 / total as f64 > 0.5,
            "top decile only {:.2} of requests",
            top10pct as f64 / total as f64
        );
    }
}
