//! P-HTTP connection reconstruction from per-request logs.
//!
//! Web-server logs record individual requests, not connections. Section 6 of
//! the paper introduces the heuristic this module implements:
//!
//! > "Any set of requests sent by the same client with a period of less than
//! > 15s (the default time used by Web servers to close idle HTTP 1.1
//! > connections) between any two successive requests were considered to have
//! > arrived on a single HTTP 1.1 connection. To model HTTP pipelining, all
//! > requests other than the first that are in the same HTTP 1.1 connection
//! > and are within 1s of each other are considered a batch of pipelined
//! > requests. Clients can pipeline all requests in a batch but have to wait
//! > for data from the server before requests in the next batch can be sent."
//!
//! The first request of a connection always forms a batch by itself: a real
//! browser must parse the container document before it can request the
//! embedded objects.

use phttp_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::record::{ClientId, Request, TargetId, Trace};

/// Parameters of the reconstruction heuristic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Idle interval after which servers close a persistent connection.
    /// Gaps `>= idle_close` start a new connection. Paper default: 15 s.
    pub idle_close: SimDuration,
    /// Two successive non-first requests closer than this belong to one
    /// pipelined batch. Paper default: 1 s.
    pub batch_window: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            idle_close: SimDuration::from_secs(15),
            batch_window: SimDuration::from_secs(1),
        }
    }
}

/// A batch of pipelined requests: the client sends all of them back-to-back,
/// then waits for all responses before sending the next batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Arrival time of the first request of the batch.
    pub time: SimTime,
    /// The pipelined targets, in request order.
    pub targets: Vec<TargetId>,
}

impl Batch {
    /// Number of requests in the batch (the paper's `N` for 1/N load accounting).
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if the batch holds no requests (never produced by
    /// reconstruction; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// A reconstructed persistent connection: one client, one or more batches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// The client holding the connection.
    pub client: ClientId,
    /// Pipelined batches in time order; `batches[0]` is always a single request.
    pub batches: Vec<Batch>,
}

impl Connection {
    /// Time the connection opens (arrival of its first request).
    pub fn start_time(&self) -> SimTime {
        self.batches[0].time
    }

    /// Total number of requests on the connection.
    pub fn num_requests(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }

    /// Iterates over every target on the connection in request order.
    pub fn targets(&self) -> impl Iterator<Item = TargetId> + '_ {
        self.batches.iter().flat_map(|b| b.targets.iter().copied())
    }
}

/// A workload expressed as connections — what the cluster actually serves.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConnectionTrace {
    /// Connections ordered by start time.
    pub connections: Vec<Connection>,
}

impl ConnectionTrace {
    /// Total requests across all connections.
    pub fn num_requests(&self) -> usize {
        self.connections.iter().map(Connection::num_requests).sum()
    }

    /// Mean number of requests per connection.
    pub fn mean_requests_per_connection(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        self.num_requests() as f64 / self.connections.len() as f64
    }

    /// Mean number of batches per connection.
    pub fn mean_batches_per_connection(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        let batches: usize = self.connections.iter().map(|c| c.batches.len()).sum();
        batches as f64 / self.connections.len() as f64
    }
}

/// Groups a request log into persistent connections per [`SessionConfig`].
///
/// Requests of each client are examined in time order (the trace is already
/// time-sorted; the per-client relative order is preserved). The output is
/// ordered by connection start time.
///
/// # Examples
///
/// ```
/// use phttp_simcore::SimTime;
/// use phttp_trace::{reconstruct, ClientId, Request, SessionConfig, TargetId, Trace};
///
/// let reqs = vec![
///     Request { time: SimTime::from_secs(0), client: ClientId(1), target: TargetId(0) },
///     Request { time: SimTime::from_millis(200), client: ClientId(1), target: TargetId(1) },
///     // 20 s gap: same client, but a new connection.
///     Request { time: SimTime::from_secs(21), client: ClientId(1), target: TargetId(0) },
/// ];
/// let trace = Trace::new(reqs, vec![1024, 2048]);
/// let conns = reconstruct(&trace, SessionConfig::default());
/// assert_eq!(conns.connections.len(), 2);
/// assert_eq!(conns.connections[0].num_requests(), 2);
/// ```
pub fn reconstruct(trace: &Trace, cfg: SessionConfig) -> ConnectionTrace {
    // Split requests per client, preserving time order.
    let mut per_client: std::collections::HashMap<ClientId, Vec<&Request>> =
        std::collections::HashMap::new();
    for r in trace.requests() {
        per_client.entry(r.client).or_default().push(r);
    }

    let mut connections = Vec::new();
    for (client, reqs) in per_client {
        let mut i = 0;
        while i < reqs.len() {
            // Extend the connection while successive gaps are < idle_close.
            let mut j = i + 1;
            while j < reqs.len() {
                let gap = reqs[j].time.duration_since(reqs[j - 1].time);
                if gap < cfg.idle_close {
                    j += 1;
                } else {
                    break;
                }
            }
            connections.push(split_batches(client, &reqs[i..j], cfg.batch_window));
            i = j;
        }
    }
    connections.sort_by_key(Connection::start_time);
    ConnectionTrace { connections }
}

/// Treats every request as its own single-request connection (HTTP/1.0).
///
/// This is how the simulator consumes a trace in HTTP/1.0 mode; it makes the
/// two protocol modes interchangeable at the workload interface.
pub fn http10_connections(trace: &Trace) -> ConnectionTrace {
    let connections = trace
        .requests()
        .iter()
        .map(|r| Connection {
            client: r.client,
            batches: vec![Batch {
                time: r.time,
                targets: vec![r.target],
            }],
        })
        .collect();
    ConnectionTrace { connections }
}

/// Splits one connection's requests into pipelined batches.
///
/// The first request is its own batch. Among the rest, a gap `>= window`
/// starts a new batch.
fn split_batches(client: ClientId, reqs: &[&Request], window: SimDuration) -> Connection {
    debug_assert!(!reqs.is_empty());
    let mut batches = vec![Batch {
        time: reqs[0].time,
        targets: vec![reqs[0].target],
    }];
    let mut k = 1;
    while k < reqs.len() {
        let mut m = k + 1;
        while m < reqs.len() {
            let gap = reqs[m].time.duration_since(reqs[m - 1].time);
            if gap < window {
                m += 1;
            } else {
                break;
            }
        }
        batches.push(Batch {
            time: reqs[k].time,
            targets: reqs[k..m].iter().map(|r| r.target).collect(),
        });
        k = m;
    }
    Connection { client, batches }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(secs_milli: u64, client: u32, target: u32) -> Request {
        Request {
            time: SimTime::from_millis(secs_milli),
            client: ClientId(client),
            target: TargetId(target),
        }
    }

    fn trace(reqs: Vec<Request>) -> Trace {
        let max_target = reqs.iter().map(|r| r.target.0).max().unwrap_or(0);
        Trace::new(reqs, vec![1024; (max_target + 1) as usize])
    }

    #[test]
    fn single_request_is_single_connection_single_batch() {
        let tr = trace(vec![req(0, 1, 0)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        assert_eq!(ct.connections.len(), 1);
        assert_eq!(ct.connections[0].batches.len(), 1);
        assert_eq!(ct.connections[0].num_requests(), 1);
    }

    #[test]
    fn gap_exactly_at_idle_close_starts_new_connection() {
        // The paper's wording is "a period of LESS than 15s": 15.000s exactly
        // must therefore split.
        let tr = trace(vec![req(0, 1, 0), req(15_000, 1, 1)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        assert_eq!(ct.connections.len(), 2);

        let tr2 = trace(vec![req(0, 1, 0), req(14_999, 1, 1)]);
        let ct2 = reconstruct(&tr2, SessionConfig::default());
        assert_eq!(ct2.connections.len(), 1);
    }

    #[test]
    fn first_request_is_always_its_own_batch() {
        // Three requests 100 ms apart: all within the batch window, but the
        // first stays alone (the client needs the container page first).
        let tr = trace(vec![req(0, 1, 0), req(100, 1, 1), req(200, 1, 2)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        let c = &ct.connections[0];
        assert_eq!(c.batches.len(), 2);
        assert_eq!(c.batches[0].targets, vec![TargetId(0)]);
        assert_eq!(c.batches[1].targets, vec![TargetId(1), TargetId(2)]);
    }

    #[test]
    fn batch_window_boundary() {
        // Second and third requests exactly 1 s apart: separate batches.
        let tr = trace(vec![req(0, 1, 0), req(100, 1, 1), req(1_100, 1, 2)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        let c = &ct.connections[0];
        assert_eq!(c.batches.len(), 3);
        // 999 ms apart: same batch.
        let tr2 = trace(vec![req(0, 1, 0), req(100, 1, 1), req(1_099, 1, 2)]);
        let ct2 = reconstruct(&tr2, SessionConfig::default());
        assert_eq!(ct2.connections[0].batches.len(), 2);
    }

    #[test]
    fn clients_are_independent() {
        let tr = trace(vec![req(0, 1, 0), req(10, 2, 1), req(20, 1, 2)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        assert_eq!(ct.connections.len(), 2);
        let total: usize = ct.connections.iter().map(Connection::num_requests).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn connections_sorted_by_start_time() {
        let tr = trace(vec![req(500, 7, 0), req(0, 3, 1), req(100_000, 7, 2)]);
        let ct = reconstruct(&tr, SessionConfig::default());
        let starts: Vec<u64> = ct
            .connections
            .iter()
            .map(|c| c.start_time().as_micros())
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn http10_mode_one_request_per_connection() {
        let tr = trace(vec![req(0, 1, 0), req(100, 1, 1), req(200, 1, 2)]);
        let ct = http10_connections(&tr);
        assert_eq!(ct.connections.len(), 3);
        assert!(ct.connections.iter().all(|c| c.num_requests() == 1));
        assert!((ct.mean_requests_per_connection() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_conservation() {
        let tr = trace(vec![
            req(0, 1, 0),
            req(200, 1, 1),
            req(400, 2, 2),
            req(30_000, 1, 0),
            req(30_100, 2, 1),
        ]);
        let ct = reconstruct(&tr, SessionConfig::default());
        assert_eq!(ct.num_requests(), tr.len());
    }

    #[test]
    fn stats_on_empty() {
        let ct = ConnectionTrace::default();
        assert_eq!(ct.mean_requests_per_connection(), 0.0);
        assert_eq!(ct.mean_batches_per_connection(), 0.0);
    }
}
