//! Web-server workload substrate for the P-HTTP cluster reproduction.
//!
//! The paper drives every experiment from request traces (Rice University
//! server logs). This crate provides the full workload pipeline:
//!
//! * [`record`] — trace records, the target corpus, and workload statistics
//!   (working set, cache-coverage curve, mean response size);
//! * [`clf`] — Common Log Format parsing, so real logs can be used verbatim;
//! * [`synth`] — a deterministic synthetic generator with Rice-like
//!   structure, used because the original trace is not public;
//! * [`specweb`] — a SPECweb96-like class-mix generator (a second workload
//!   family without page structure, for sensitivity studies);
//! * [`phttp`] — the paper's §6 heuristics that reconstruct HTTP/1.1
//!   persistent connections (15 s idle rule) and pipelined batches (1 s
//!   rule) from per-request logs.

pub mod clf;
pub mod phttp;
pub mod record;
pub mod specweb;
pub mod synth;

pub use phttp::{
    http10_connections, reconstruct, Batch, Connection, ConnectionTrace, SessionConfig,
};
pub use record::{ClientId, Request, TargetId, Trace};
pub use specweb::{generate_specweb, SpecWebConfig};
pub use synth::{generate, SynthConfig};
