//! SPECweb96-like synthetic workload.
//!
//! The paper notes that "synthetic workload generators like SURGE and
//! SPECweb do not generate workloads representative of HTTP/1.1
//! connections" — they model per-request file-class mixes, not
//! persistent-connection structure. This module implements that classic
//! class-based model anyway, as a *second* workload family for sensitivity
//! studies: it exercises the cluster with a very different size
//! distribution (the SPECweb96 four-class mix) and deliberately has *no*
//! page structure, so P-HTTP connections reconstructed from it degenerate
//! toward single-request connections — a useful contrast to the Rice-like
//! generator in [`crate::synth`].
//!
//! SPECweb96's access mix: four file classes — 0-1 KB (35%), 1-10 KB (50%),
//! 10-100 KB (14%), 100 KB-1 MB (1%) — with files within a class accessed
//! by a Zipf-like rule over per-class directories.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use phttp_simcore::{Exp, SimDuration, SimTime, Zipf};

use crate::record::{ClientId, Request, TargetId, Trace};

/// The four SPECweb96 file classes: (min bytes, max bytes, access weight).
pub const CLASSES: [(u64, u64, f64); 4] = [
    (102, 1_024, 0.35),
    (1_025, 10_240, 0.50),
    (10_241, 102_400, 0.14),
    (102_401, 1_048_576, 0.01),
];

/// Parameters of the SPECweb-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecWebConfig {
    /// RNG seed; equal seeds yield identical traces.
    pub seed: u64,
    /// Number of files per class.
    pub files_per_class: usize,
    /// Total requests to generate.
    pub num_requests: usize,
    /// Number of client hosts.
    pub num_clients: usize,
    /// Zipf exponent over files within a class.
    pub zipf_exponent: f64,
    /// Mean inter-request gap per the whole workload, seconds.
    pub inter_request_gap_s: f64,
}

impl Default for SpecWebConfig {
    fn default() -> Self {
        SpecWebConfig {
            seed: 1996,
            files_per_class: 2_500,
            num_requests: 150_000,
            num_clients: 1_000,
            zipf_exponent: 1.0,
            inter_request_gap_s: 0.01,
        }
    }
}

impl SpecWebConfig {
    /// Scaled-down variant for tests and CI.
    pub fn small() -> Self {
        SpecWebConfig {
            files_per_class: 300,
            num_requests: 12_000,
            num_clients: 200,
            ..SpecWebConfig::default()
        }
    }
}

/// Generates a SPECweb96-like trace.
///
/// # Examples
///
/// ```
/// use phttp_trace::specweb::{generate_specweb, SpecWebConfig};
///
/// let trace = generate_specweb(&SpecWebConfig::small());
/// assert_eq!(trace.len(), SpecWebConfig::small().num_requests);
/// ```
pub fn generate_specweb(cfg: &SpecWebConfig) -> Trace {
    assert!(cfg.files_per_class > 0 && cfg.num_requests > 0 && cfg.num_clients > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Corpus: four classes of `files_per_class` files, sizes log-uniform
    // within the class bounds (SPECweb96 used fixed per-directory sizes;
    // log-uniform matches its spirit without its directory bookkeeping).
    let mut sizes = Vec::with_capacity(cfg.files_per_class * CLASSES.len());
    for &(lo, hi, _) in &CLASSES {
        for _ in 0..cfg.files_per_class {
            let u: f64 = rng.gen();
            let s = (lo as f64).ln() + u * ((hi as f64).ln() - (lo as f64).ln());
            sizes.push(s.exp().round() as u64);
        }
    }

    let class_cdf: Vec<f64> = CLASSES
        .iter()
        .scan(0.0, |acc, &(_, _, w)| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let within = Zipf::new(cfg.files_per_class, cfg.zipf_exponent);
    let gap = Exp::new(cfg.inter_request_gap_s);

    let mut requests = Vec::with_capacity(cfg.num_requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.num_requests {
        t += gap.sample(&mut rng);
        let u: f64 = rng.gen();
        let class = class_cdf.partition_point(|&c| c < u).min(CLASSES.len() - 1);
        let file = within.sample(&mut rng);
        requests.push(Request {
            time: SimTime::ZERO + SimDuration::from_secs_f64(t),
            client: ClientId(rng.gen_range(0..cfg.num_clients as u32)),
            target: TargetId((class * cfg.files_per_class + file) as u32),
        });
    }
    Trace::new(requests, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate_specweb(&SpecWebConfig::small());
        let b = generate_specweb(&SpecWebConfig::small());
        assert_eq!(a.requests(), b.requests());
        assert_eq!(a.len(), SpecWebConfig::small().num_requests);
        assert_eq!(
            a.num_targets(),
            SpecWebConfig::small().files_per_class * CLASSES.len()
        );
    }

    #[test]
    fn class_mix_matches_weights() {
        let cfg = SpecWebConfig::small();
        let trace = generate_specweb(&cfg);
        let mut per_class = [0usize; 4];
        for r in trace.requests() {
            per_class[r.target.0 as usize / cfg.files_per_class] += 1;
        }
        let total = trace.len() as f64;
        for (i, &(_, _, w)) in CLASSES.iter().enumerate() {
            let got = per_class[i] as f64 / total;
            assert!(
                (got - w).abs() < 0.03,
                "class {i}: got {got:.3}, want {w:.3}"
            );
        }
    }

    #[test]
    fn sizes_respect_class_bounds() {
        let cfg = SpecWebConfig::small();
        let trace = generate_specweb(&cfg);
        for (i, &(lo, hi, _)) in CLASSES.iter().enumerate() {
            for f in 0..cfg.files_per_class {
                let t = TargetId((i * cfg.files_per_class + f) as u32);
                let s = trace.size_of(t);
                assert!(
                    s >= lo && s <= hi + 1,
                    "class {i} file size {s} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn mean_size_is_specweb_like() {
        // SPECweb96's mix has a mean transfer around 14-15 KB.
        let trace = generate_specweb(&SpecWebConfig::default());
        let kb = trace.mean_response_bytes() / 1024.0;
        assert!((4.0..30.0).contains(&kb), "mean {kb:.1} KB");
    }

    #[test]
    fn no_page_structure_means_short_connections() {
        // Random per-request clients: reconstruction should yield far fewer
        // requests per connection than the Rice-like generator.
        let trace = generate_specweb(&SpecWebConfig::small());
        let conns = crate::phttp::reconstruct(&trace, crate::phttp::SessionConfig::default());
        assert!(conns.mean_requests_per_connection() < 100.0);
        assert!(!conns.connections.is_empty());
    }
}
