//! Property-based tests for workload invariants.

use proptest::prelude::*;

use phttp_simcore::{SimDuration, SimTime};
use phttp_trace::{
    http10_connections, reconstruct, ClientId, Request, SessionConfig, TargetId, Trace,
};

/// Strategy: an arbitrary small trace over a few clients and targets.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..200_000_000, 0u32..6, 0u32..20), 0..250).prop_map(|tuples| {
        let reqs = tuples
            .into_iter()
            .map(|(t, c, g)| Request {
                time: SimTime::from_micros(t),
                client: ClientId(c),
                target: TargetId(g),
            })
            .collect();
        Trace::new(reqs, (0..20).map(|i| 100 + i * 37).collect())
    })
}

proptest! {
    /// Reconstruction conserves requests: every logged request appears in
    /// exactly one batch of exactly one connection.
    #[test]
    fn reconstruction_conserves_requests(trace in arb_trace()) {
        let ct = reconstruct(&trace, SessionConfig::default());
        prop_assert_eq!(ct.num_requests(), trace.len());
    }

    /// Within a connection, no two successive requests are separated by the
    /// idle-close interval or more, and requests stay in time order.
    #[test]
    fn no_intra_connection_gap_reaches_idle_close(trace in arb_trace()) {
        let cfg = SessionConfig::default();
        let ct = reconstruct(&trace, cfg);
        for conn in &ct.connections {
            let times: Vec<SimTime> = conn
                .batches
                .iter()
                .flat_map(|b| std::iter::repeat_n(b.time, b.targets.len()))
                .collect();
            // Batch start stamps are non-decreasing.
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// Splitting at every >= idle_close gap means merging adjacent
    /// connections of one client always exposes such a gap.
    #[test]
    fn adjacent_connections_of_a_client_are_separated(trace in arb_trace()) {
        let cfg = SessionConfig::default();
        let ct = reconstruct(&trace, cfg);
        let mut per_client: std::collections::HashMap<ClientId, Vec<&phttp_trace::Connection>> =
            Default::default();
        for c in &ct.connections {
            per_client.entry(c.client).or_default().push(c);
        }
        for conns in per_client.values() {
            for w in conns.windows(2) {
                // The next connection starts at least idle_close after the
                // previous connection's *last* request.
                let prev_last = w[0].batches.last().unwrap().time;
                let next_first = w[1].start_time();
                prop_assert!(
                    next_first.duration_since(prev_last) >= cfg.idle_close,
                    "client connection split without an idle gap"
                );
            }
        }
    }

    /// The first batch of every connection holds exactly one request.
    #[test]
    fn first_batch_is_singleton(trace in arb_trace()) {
        let ct = reconstruct(&trace, SessionConfig::default());
        for conn in &ct.connections {
            prop_assert_eq!(conn.batches[0].targets.len(), 1);
            for b in &conn.batches {
                prop_assert!(!b.is_empty());
            }
        }
    }

    /// HTTP/1.0 mode yields exactly one connection per request.
    #[test]
    fn http10_is_one_to_one(trace in arb_trace()) {
        let ct = http10_connections(&trace);
        prop_assert_eq!(ct.connections.len(), trace.len());
        prop_assert_eq!(ct.num_requests(), trace.len());
    }

    /// A degenerate zero-window config produces one batch per request but
    /// still conserves them all.
    #[test]
    fn zero_windows_still_conserve(trace in arb_trace()) {
        let cfg = SessionConfig {
            idle_close: SimDuration::from_micros(1),
            batch_window: SimDuration::from_micros(1),
        };
        let ct = reconstruct(&trace, cfg);
        prop_assert_eq!(ct.num_requests(), trace.len());
    }

    /// Coverage curve is monotone in the fraction.
    #[test]
    fn coverage_curve_is_monotone(trace in arb_trace()) {
        if trace.is_empty() {
            return Ok(());
        }
        let cov = trace.coverage_curve(&[0.25, 0.5, 0.75, 1.0]);
        for w in cov.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Covering 100% of requests never needs more than the working set.
        prop_assert!(cov[3] <= trace.working_set_bytes());
    }
}
