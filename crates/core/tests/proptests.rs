//! Property-based tests for the policy layer.
//!
//! The central property is the paper's own observation: "the extended LARD
//! policy is equivalent to LARD for HTTP/1.0 requests" — on workloads where
//! every connection carries exactly one request, the two dispatchers must
//! make identical choices.

use proptest::prelude::*;

use phttp_core::{Assignment, ConnId, Dispatcher, ForwardSemantics, LardParams, PolicyKind};
use phttp_trace::TargetId;

/// A scripted workload step.
#[derive(Debug, Clone)]
enum Step {
    /// Open a connection for a target (HTTP/1.0: one request per conn).
    Open(u32),
    /// Close the oldest still-open connection.
    CloseOldest,
}

/// A scripted step for the health-gating property: workload ops
/// interleaved with breaker churn.
#[derive(Debug, Clone)]
enum HealthStep {
    /// Open a connection for a target.
    Open(u32),
    /// Assign one request on the most recent connection.
    Request(u32),
    /// Close the oldest still-open connection.
    CloseOldest,
    /// Force a node's breaker Open (failure-detector verdict).
    Trip(usize),
    /// Evict + warm-rejoin a node (resets its breaker to Closed).
    Rejoin(usize),
    /// Advance every Open cooldown by one tick.
    Tick,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![(0u32..30).prop_map(Step::Open), Just(Step::CloseOldest),],
        1..300,
    )
}

proptest! {
    /// Extended LARD and basic LARD agree on pure HTTP/1.0 workloads.
    #[test]
    fn ext_lard_equals_lard_on_http10(steps in arb_steps(), nodes in 1usize..8) {
        let params = LardParams::default();
        let mut lard = Dispatcher::new(
            PolicyKind::Lard, ForwardSemantics::LateralFetch, nodes, params,
        );
        let mut ext = Dispatcher::new(
            PolicyKind::ExtLard, ForwardSemantics::LateralFetch, nodes, params,
        );
        let mut open: std::collections::VecDeque<ConnId> = Default::default();
        let mut next = 0u64;
        for step in steps {
            match step {
                Step::Open(t) => {
                    let id = ConnId(next);
                    next += 1;
                    let a = lard.open_connection(id, TargetId(t));
                    let b = ext.open_connection(id, TargetId(t));
                    prop_assert_eq!(a, b, "divergent choice for {}", TargetId(t));
                    open.push_back(id);
                }
                Step::CloseOldest => {
                    if let Some(id) = open.pop_front() {
                        lard.close_connection(id);
                        ext.close_connection(id);
                    }
                }
            }
        }
        // Loads agree throughout (spot-check at the end).
        for i in 0..nodes {
            prop_assert!((lard.loads()[i] - ext.loads()[i]).abs() < 1e-9);
        }
    }

    /// Load conservation: after closing everything, all loads return to ~0,
    /// for every policy and semantics, including P-HTTP batches.
    #[test]
    fn loads_return_to_zero(
        conns in proptest::collection::vec(
            (0u32..20, proptest::collection::vec(proptest::collection::vec(0u32..20, 1..4), 0..3)),
            1..40,
        ),
        policy_idx in 0usize..3,
        migrate in any::<bool>(),
        disk_busy in any::<bool>(),
    ) {
        let policy = [PolicyKind::Wrr, PolicyKind::Lard, PolicyKind::ExtLard][policy_idx];
        let semantics = if migrate { ForwardSemantics::Migrate } else { ForwardSemantics::LateralFetch };
        let mut d = Dispatcher::new(policy, semantics, 4, LardParams::default());
        if disk_busy {
            for i in 0..4 {
                d.report_disk_queue(phttp_core::NodeId(i), 99);
            }
        }
        for (cid, (first, batches)) in conns.iter().enumerate() {
            let id = ConnId(cid as u64);
            d.open_connection(id, TargetId(*first));
            for batch in batches {
                d.begin_batch(id, batch.len());
                for &t in batch {
                    let _ = d.assign_request(id, TargetId(t));
                }
            }
        }
        for cid in 0..conns.len() {
            d.close_connection(ConnId(cid as u64));
        }
        for l in d.loads() {
            prop_assert!(l.abs() < 1e-6, "residual load {l}");
        }
        prop_assert_eq!(d.active_connections(), 0);
    }

    /// The dispatcher is deterministic: identical inputs give identical outputs.
    #[test]
    fn dispatcher_is_deterministic(steps in arb_steps(), nodes in 1usize..6) {
        let run = || {
            let mut d = Dispatcher::new(
                PolicyKind::ExtLard,
                ForwardSemantics::LateralFetch,
                nodes,
                LardParams::default(),
            );
            let mut out = Vec::new();
            let mut open: std::collections::VecDeque<ConnId> = Default::default();
            let mut next = 0u64;
            for step in &steps {
                match step {
                    Step::Open(t) => {
                        let id = ConnId(next);
                        next += 1;
                        out.push(d.open_connection(id, TargetId(*t)).0);
                        open.push_back(id);
                    }
                    Step::CloseOldest => {
                        if let Some(id) = open.pop_front() {
                            d.close_connection(id);
                        }
                    }
                }
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    /// Extended LARD never forwards to a node that the mapping does not list
    /// for the target (the paper's candidate restriction), and never
    /// "forwards" to the connection node itself.
    #[test]
    fn ext_lard_forwards_only_to_caching_nodes(
        reqs in proptest::collection::vec((0u32..15, 1usize..4), 1..60),
        depths in proptest::collection::vec(0usize..60, 4),
    ) {
        let mut d = Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        for (i, &depth) in depths.iter().enumerate() {
            d.report_disk_queue(phttp_core::NodeId(i), depth);
        }
        let conn = ConnId(0);
        let conn_node = d.open_connection(conn, TargetId(0));
        for (i, &(t, n)) in reqs.iter().enumerate() {
            d.begin_batch(conn, n);
            // Snapshot mapping before the decision (the decision may add
            // replicas for the local-caching rule).
            let candidates: Vec<_> = d.mapping().nodes(TargetId(t)).to_vec();
            match d.assign_request(conn, TargetId(t)) {
                Assignment::Local => {}
                Assignment::Remote(r) => {
                    prop_assert_ne!(r, conn_node, "step {}", i);
                    prop_assert!(
                        candidates.contains(&r),
                        "forwarded to non-caching node {:?}, candidates {:?}",
                        r, candidates
                    );
                }
            }
        }
    }

    /// Under arbitrary breaker churn (trips, resets, cooldown ticks), no
    /// decision ever routes traffic to an `Open` node — with the one
    /// documented exception: when *every* node refuses admission the
    /// dispatcher fails open and keeps the policy's pick.
    #[test]
    fn no_assignment_ever_routes_to_an_open_node(
        steps in proptest::collection::vec(
            prop_oneof![
                (0u32..20).prop_map(HealthStep::Open),
                Just(HealthStep::CloseOldest),
                (0usize..4).prop_map(HealthStep::Trip),
                (0usize..4).prop_map(HealthStep::Rejoin),
                Just(HealthStep::Tick),
                (0u32..20).prop_map(HealthStep::Request),
            ],
            1..200,
        ),
        policy_idx in 0usize..3,
        disk_busy in any::<bool>(),
    ) {
        use phttp_core::{HealthState, NodeId};
        let policy = [PolicyKind::Wrr, PolicyKind::Lard, PolicyKind::ExtLard][policy_idx];
        let nodes = 4usize;
        let mut d = Dispatcher::new(policy, ForwardSemantics::LateralFetch, nodes, LardParams::default());
        if disk_busy {
            for i in 0..nodes {
                d.report_disk_queue(NodeId(i), 99);
            }
        }
        let mut open: std::collections::VecDeque<ConnId> = Default::default();
        let mut next = 0u64;
        for (i, step) in steps.iter().enumerate() {
            match step {
                HealthStep::Open(t) => {
                    let id = ConnId(next);
                    next += 1;
                    let node = d.open_connection(id, TargetId(*t));
                    open.push_back(id);
                    let all_refuse = (0..nodes).all(|n| !d.health().permitted(NodeId(n)));
                    prop_assert!(
                        d.health().state(node) != HealthState::Open || all_refuse,
                        "step {i}: connection landed on Open node {node:?}"
                    );
                }
                HealthStep::Request(t) => {
                    if let Some(&id) = open.back() {
                        d.begin_batch(id, 1);
                        if let Assignment::Remote(r) = d.assign_request(id, TargetId(*t)) {
                            // Remote gating has no fail-open: it degrades
                            // to Local instead, so Open is never allowed.
                            prop_assert_ne!(
                                d.health().state(r),
                                HealthState::Open,
                                "step {}: forwarded to Open node",
                                i
                            );
                        }
                    }
                }
                HealthStep::CloseOldest => {
                    if let Some(id) = open.pop_front() {
                        d.close_connection(id);
                    }
                }
                HealthStep::Trip(n) => d.health().force_open(NodeId(*n)),
                HealthStep::Rejoin(n) => {
                    let n = NodeId(*n);
                    d.evict_node(n);
                    d.warm_up(n, &[]);
                }
                HealthStep::Tick => d.health().tick_all(),
            }
        }
    }

    /// A HalfOpen breaker admits exactly the probation quota, for any
    /// quota and any (longer) burst of admission attempts, and fresh
    /// episodes refill the quota exactly.
    #[test]
    fn half_open_admits_exactly_the_probation_quota(
        probation in 1u32..12,
        attempts in 0usize..40,
        episodes in 1usize..4,
    ) {
        use phttp_core::{HealthConfig, HealthGate, HealthState, NodeId};
        let cfg = HealthConfig { probation, cooldown_ticks: 1, ..HealthConfig::default() };
        let g = HealthGate::new(1, cfg);
        let n = NodeId(0);
        for _ in 0..episodes {
            g.force_open(n);
            prop_assert!(!g.try_admit(n), "Open must refuse everything");
            g.tick(n);
            prop_assert_eq!(g.state(n), HealthState::HalfOpen);
            let admitted = (0..attempts).filter(|_| g.try_admit(n)).count();
            prop_assert_eq!(
                admitted,
                attempts.min(probation as usize),
                "probation {} attempts {}", probation, attempts
            );
        }
    }

    /// WRR keeps loads balanced within one connection of each other when no
    /// connections close.
    #[test]
    fn wrr_imbalance_is_bounded(targets in proptest::collection::vec(0u32..50, 1..200), nodes in 1usize..8) {
        let mut d = Dispatcher::new(
            PolicyKind::Wrr, ForwardSemantics::LateralFetch, nodes, LardParams::default(),
        );
        for (i, &t) in targets.iter().enumerate() {
            d.open_connection(ConnId(i as u64), TargetId(t));
        }
        let max = d.loads().iter().cloned().fold(f64::MIN, f64::max);
        let min = d.loads().iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(max - min <= 1.0 + 1e-9, "imbalance {} on {} nodes", max - min, nodes);
    }
}
