//! Concurrency stress: N threads hammer a shared [`ConcurrentDispatcher`]
//! with full open / batch / assign / close lifecycles, across every
//! policy and both forwarding semantics. Afterwards the load-accounting
//! invariant must hold exactly: every fixed-point charge was paired with
//! its discharge, so all node loads are exactly zero, none negative, and
//! no connection state leaks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use phttp_core::{
    ConcurrentDispatcher, ConnId, DispatcherConfig, ForwardSemantics, LardParams, NodeId,
    PolicyKind,
};
use phttp_trace::TargetId;

const THREADS: usize = 8;
const CONNS_PER_THREAD: u64 = 400;
const NODES: usize = 4;

/// Drives one full connection lifecycle: open, two pipelined batches
/// with per-request assignment, close.
fn lifecycle(d: &ConcurrentDispatcher, conn: ConnId, seed: u64) {
    let t = |x: u64| TargetId((x % 512) as u32);
    d.open_connection(conn, t(seed));
    d.begin_batch(conn, 3);
    for k in 0..3 {
        let _ = d.assign_request(conn, t(seed.wrapping_mul(97).wrapping_add(k)));
    }
    d.begin_batch(conn, 2);
    for k in 0..2 {
        let _ = d.assign_request(conn, t(seed.wrapping_mul(31).wrapping_add(k)));
    }
    d.close_connection(conn);
}

fn stress(policy: PolicyKind, semantics: ForwardSemantics) {
    let d = Arc::new(ConcurrentDispatcher::from_config(
        DispatcherConfig::new(policy, semantics, NODES, LardParams::default()).with_shards(16, 16),
    ));
    // Busy disks push extended LARD through its forwarding path.
    for i in 0..NODES {
        d.report_disk_queue(NodeId(i), 50);
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let completed = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|k| {
            let d = d.clone();
            let barrier = barrier.clone();
            let completed = completed.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..CONNS_PER_THREAD {
                    let conn = ConnId(k * 1_000_000 + i);
                    lifecycle(&d, conn, k.wrapping_mul(7919).wrapping_add(i));
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert_eq!(
        completed.load(Ordering::Relaxed),
        (THREADS as u64) * CONNS_PER_THREAD,
        "{policy:?}/{semantics:?}: lost lifecycles"
    );
    assert_eq!(
        d.active_connections(),
        0,
        "{policy:?}/{semantics:?}: leaked connection state"
    );
    // The invariant, in exact fixed point: total charged load returned
    // to zero and no node ended up negative.
    for i in 0..NODES {
        let fixed = d.load_tracker().load_fixed(NodeId(i));
        assert_eq!(
            fixed, 0,
            "{policy:?}/{semantics:?}: node {i} residual load {fixed} (negative = over-discharge)"
        );
    }
}

/// Same lifecycle as [`lifecycle`], but each pipelined batch is decided
/// through the amortized [`ConcurrentDispatcher::assign_batch`] call —
/// one connection-shard visit and grouped mapping-shard acquisitions per
/// batch — instead of `begin_batch` + per-request `assign_request`.
fn lifecycle_batched(d: &ConcurrentDispatcher, conn: ConnId, seed: u64) {
    let t = |x: u64| TargetId((x % 512) as u32);
    d.open_connection(conn, t(seed));
    let batch3: Vec<TargetId> = (0..3)
        .map(|k| t(seed.wrapping_mul(97).wrapping_add(k)))
        .collect();
    assert_eq!(d.assign_batch(conn, &batch3).len(), 3);
    let batch2: Vec<TargetId> = (0..2)
        .map(|k| t(seed.wrapping_mul(31).wrapping_add(k)))
        .collect();
    assert_eq!(d.assign_batch(conn, &batch2).len(), 2);
    d.close_connection(conn);
}

/// Batched variant of [`stress`]: N threads drive whole-batch decisions
/// against the shared dispatcher, with batches deliberately spanning
/// multiple mapping shards (few shards, many targets). The invariant is
/// the same exact fixed-point conservation — holding a connection shard
/// while acquiring a sorted set of mapping shards must neither deadlock
/// nor leak a single unit of load.
fn stress_batched(policy: PolicyKind, semantics: ForwardSemantics) {
    let d = Arc::new(ConcurrentDispatcher::from_config(
        DispatcherConfig::new(policy, semantics, NODES, LardParams::default()).with_shards(4, 4),
    ));
    for i in 0..NODES {
        d.report_disk_queue(NodeId(i), 50);
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|k| {
            let d = d.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..CONNS_PER_THREAD {
                    let conn = ConnId(k * 1_000_000 + i);
                    lifecycle_batched(&d, conn, k.wrapping_mul(7919).wrapping_add(i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert_eq!(
        d.active_connections(),
        0,
        "{policy:?}/{semantics:?}: leaked connection state"
    );
    for i in 0..NODES {
        let fixed = d.load_tracker().load_fixed(NodeId(i));
        assert_eq!(
            fixed, 0,
            "{policy:?}/{semantics:?}: node {i} residual load {fixed} after batched dispatch"
        );
    }
}

#[test]
fn wrr_lateral_fetch() {
    stress(PolicyKind::Wrr, ForwardSemantics::LateralFetch);
}

#[test]
fn batched_wrr_lateral_fetch() {
    stress_batched(PolicyKind::Wrr, ForwardSemantics::LateralFetch);
}

#[test]
fn batched_lard_lateral_fetch() {
    stress_batched(PolicyKind::Lard, ForwardSemantics::LateralFetch);
}

#[test]
fn batched_ext_lard_lateral_fetch() {
    stress_batched(PolicyKind::ExtLard, ForwardSemantics::LateralFetch);
}

#[test]
fn batched_ext_lard_migrate() {
    stress_batched(PolicyKind::ExtLard, ForwardSemantics::Migrate);
}

#[test]
fn lard_lateral_fetch() {
    stress(PolicyKind::Lard, ForwardSemantics::LateralFetch);
}

#[test]
fn ext_lard_lateral_fetch() {
    stress(PolicyKind::ExtLard, ForwardSemantics::LateralFetch);
}

#[test]
fn ext_lard_migrate() {
    stress(PolicyKind::ExtLard, ForwardSemantics::Migrate);
}

/// Interleaved lifecycles: connections stay open across other threads'
/// work (held in a shared pool and closed by whichever thread drew
/// them), so charges and discharges for one connection can come from
/// different threads.
#[test]
fn cross_thread_open_close() {
    use parking_lot_free_pool::Pool;

    let d = Arc::new(ConcurrentDispatcher::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        NODES,
        LardParams::default(),
    ));
    for i in 0..NODES {
        d.report_disk_queue(NodeId(i), 50);
    }
    let pool = Arc::new(Pool::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|k| {
            let d = d.clone();
            let pool = pool.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..CONNS_PER_THREAD {
                    let conn = ConnId(k * 1_000_000 + i);
                    d.open_connection(conn, TargetId((i % 256) as u32));
                    d.begin_batch(conn, 2);
                    let _ = d.assign_request(conn, TargetId(((i + 3) % 256) as u32));
                    // Park this connection; close one parked earlier
                    // (possibly by another thread).
                    if let Some(parked) = pool.swap(conn) {
                        d.close_connection(parked);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
    // Close whatever is still parked.
    for conn in pool.drain() {
        d.close_connection(conn);
    }
    assert_eq!(d.active_connections(), 0);
    for i in 0..NODES {
        assert_eq!(d.load_tracker().load_fixed(NodeId(i)), 0, "node {i}");
    }
}

/// A tiny lock-based pool for the cross-thread test (std-only on
/// purpose: the object under test is the dispatcher, not the pool).
mod parking_lot_free_pool {
    use phttp_core::ConnId;
    use std::sync::Mutex;

    pub struct Pool {
        slots: Mutex<Vec<ConnId>>,
    }

    impl Pool {
        pub fn new() -> Self {
            Pool {
                slots: Mutex::new(Vec::new()),
            }
        }

        /// Parks `conn`; returns a previously parked connection to close
        /// once the pool holds more than a handful.
        pub fn swap(&self, conn: ConnId) -> Option<ConnId> {
            let mut slots = self.slots.lock().unwrap();
            slots.push(conn);
            if slots.len() > 16 {
                Some(slots.remove(0))
            } else {
                None
            }
        }

        pub fn drain(&self) -> Vec<ConnId> {
            std::mem::take(&mut self.slots.lock().unwrap())
        }
    }
}
