//! The batched-dispatch contract, property-tested: for every policy and
//! both forwarding semantics, `assign_batch(conn, targets)` must be
//! **observably identical** to `begin_batch(conn, targets.len())`
//! followed by `assign_request(conn, t)` per target in order — same
//! assignments returned, same final loads (in exact fixed point), same
//! mapping table, same connection homes. This is what lets every layer
//! (prototype handler, simulator, bench) switch to the amortized batch
//! call without re-validating policy behaviour.

use proptest::prelude::*;

use phttp_core::{
    ConcurrentDispatcher, ConnId, DispatcherConfig, ForwardSemantics, LardParams, NodeId,
    PolicyKind,
};
use phttp_trace::TargetId;

const TARGET_SPACE: u32 = 48;

/// A scripted workload step, mirrored onto both dispatchers.
#[derive(Debug, Clone)]
enum Step {
    /// Open a connection for a first target.
    Open(u32),
    /// A pipelined batch (target ids) on one of the open connections
    /// (picked by the index seed).
    Batch(Vec<u32>, u8),
    /// Close one of the open connections (picked by the index seed).
    Close(u8),
    /// A disk-queue report for one node (picked modulo the node count).
    Disk(u8, u8),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..TARGET_SPACE).prop_map(Step::Open),
            (proptest::collection::vec(0u32..TARGET_SPACE, 1..6), 0u8..16)
                .prop_map(|(ts, i)| Step::Batch(ts, i)),
            (0u8..16).prop_map(Step::Close),
            (0u8..8, 0u8..60).prop_map(|(n, d)| Step::Disk(n, d)),
        ],
        1..120,
    )
}

fn dispatcher(
    policy: PolicyKind,
    semantics: ForwardSemantics,
    nodes: usize,
) -> ConcurrentDispatcher {
    // Few shards on purpose: batches then regularly span *and* share
    // shards, exercising the grouped acquisition paths.
    ConcurrentDispatcher::from_config(
        DispatcherConfig::new(policy, semantics, nodes, LardParams::default()).with_shards(4, 4),
    )
}

/// Runs the script on a sequential and a batched dispatcher and checks
/// every observable agrees at each step and at the end.
fn check_equivalence(
    policy: PolicyKind,
    semantics: ForwardSemantics,
    nodes: usize,
    steps: &[Step],
) {
    let seq = dispatcher(policy, semantics, nodes);
    let bat = dispatcher(policy, semantics, nodes);
    let mut open: Vec<ConnId> = Vec::new();
    let mut next = 0u64;

    for step in steps {
        match step {
            Step::Open(t) => {
                let id = ConnId(next);
                next += 1;
                let a = seq.open_connection(id, TargetId(*t));
                let b = bat.open_connection(id, TargetId(*t));
                prop_assert_eq!(a, b, "divergent open for target {}", t);
                open.push(id);
            }
            Step::Batch(targets, pick) => {
                let Some(&conn) = open.get(*pick as usize % open.len().max(1)) else {
                    continue;
                };
                let targets: Vec<TargetId> = targets.iter().map(|&t| TargetId(t)).collect();
                seq.begin_batch(conn, targets.len());
                let want: Vec<_> = targets
                    .iter()
                    .map(|&t| seq.assign_request(conn, t))
                    .collect();
                let got = bat.assign_batch(conn, &targets);
                prop_assert_eq!(
                    &got,
                    &want,
                    "divergent assignments for batch {:?} on {:?}",
                    targets,
                    conn
                );
            }
            Step::Close(pick) => {
                if open.is_empty() {
                    continue;
                }
                let conn = open.swap_remove(*pick as usize % open.len());
                seq.close_connection(conn);
                bat.close_connection(conn);
            }
            Step::Disk(n, depth) => {
                let node = NodeId(*n as usize % nodes);
                seq.report_disk_queue(node, *depth as usize);
                bat.report_disk_queue(node, *depth as usize);
            }
        }
        // Loads must agree in exact fixed point after every step.
        for i in 0..nodes {
            prop_assert_eq!(
                seq.load_tracker().load_fixed(NodeId(i)),
                bat.load_tracker().load_fixed(NodeId(i)),
                "node {} load diverged after {:?}",
                i,
                step
            );
        }
    }

    // Final state: mappings, connection homes, connection counts.
    prop_assert_eq!(seq.mapping().num_targets(), bat.mapping().num_targets());
    prop_assert_eq!(seq.mapping().num_replicas(), bat.mapping().num_replicas());
    for t in 0..TARGET_SPACE {
        prop_assert_eq!(
            seq.mapping().nodes(TargetId(t)),
            bat.mapping().nodes(TargetId(t)),
            "mapping for target {} diverged",
            t
        );
    }
    prop_assert_eq!(seq.active_connections(), bat.active_connections());
    for &conn in &open {
        prop_assert_eq!(seq.connection_node(conn), bat.connection_node(conn));
    }
}

proptest! {
    #[test]
    fn wrr_lateral(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::Wrr, ForwardSemantics::LateralFetch, nodes, &steps);
    }

    #[test]
    fn lard_lateral(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::Lard, ForwardSemantics::LateralFetch, nodes, &steps);
    }

    #[test]
    fn ext_lard_lateral(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::ExtLard, ForwardSemantics::LateralFetch, nodes, &steps);
    }

    #[test]
    fn ext_lard_migrate(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::ExtLard, ForwardSemantics::Migrate, nodes, &steps);
    }

    #[test]
    fn wrr_migrate(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::Wrr, ForwardSemantics::Migrate, nodes, &steps);
    }

    #[test]
    fn lard_migrate(steps in arb_steps(), nodes in 1usize..6) {
        check_equivalence(PolicyKind::Lard, ForwardSemantics::Migrate, nodes, &steps);
    }
}
