//! Property tests for the front-end tier layer: consistent-hash ring
//! rebalancing bounds and commutativity of the state merge.

use phttp_core::tier::{Ring, StateDelta, TierView};
use phttp_core::{FeId, NodeId};
use phttp_trace::TargetId;
use proptest::prelude::*;

fn owners(ring: &Ring, targets: u32) -> Vec<FeId> {
    (0..targets).map(|i| ring.owner(TargetId(i))).collect()
}

proptest! {
    /// Every target always has an owner, and that owner is a member —
    /// through arbitrary add/remove churn.
    #[test]
    fn no_target_is_ever_unowned(
        initial in 1usize..6,
        ops in proptest::collection::vec((0usize..8, proptest::strategy::any::<bool>()), 0..12),
        probe in proptest::collection::vec(0u32..10_000, 1..50),
    ) {
        let mut ring = Ring::new(initial);
        for (fe, add) in ops {
            if add {
                ring.add_fe(FeId(fe));
            } else if ring.len() > 1 {
                ring.remove_fe(FeId(fe));
            }
            for &t in &probe {
                let owner = ring.owner(TargetId(t));
                prop_assert!(
                    ring.contains(owner),
                    "target {t} owned by non-member {owner}"
                );
            }
        }
    }

    /// Removing one front-end moves exactly the keys it owned — every
    /// other key keeps its owner (bounded movement), and the moved keys
    /// land on surviving members.
    #[test]
    fn removal_moves_only_the_removed_share(
        members in 2usize..6,
        victim in 0usize..6,
        targets in 64u32..512,
    ) {
        prop_assume!(victim < members);
        let mut ring = Ring::new(members);
        let before = owners(&ring, targets);
        ring.remove_fe(FeId(victim));
        let after = owners(&ring, targets);
        for (t, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b == FeId(victim) {
                prop_assert!(ring.contains(*a), "moved key {t} landed off-ring");
                prop_assert!(*a != FeId(victim));
            } else {
                prop_assert_eq!(*a, *b, "unowned-by-victim key {} moved", t);
            }
        }
    }

    /// Adding one front-end only moves keys *to* the newcomer: if a
    /// key's owner changed at all, the new owner is the added member.
    #[test]
    fn addition_moves_keys_only_to_the_newcomer(
        members in 1usize..6,
        newcomer in 6usize..10,
        targets in 64u32..512,
    ) {
        let mut ring = Ring::new(members);
        let before = owners(&ring, targets);
        ring.add_fe(FeId(newcomer));
        let after = owners(&ring, targets);
        for (t, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                a == b || *a == FeId(newcomer),
                "key {} moved between pre-existing members ({} -> {})", t, b, a
            );
        }
    }

    /// The tier merge converges to the same *whole view* regardless of
    /// delivery order, duplication, or re-delivery of stale deltas from
    /// any mix of origins (commutative + idempotent LWW per origin).
    /// Equality is asserted on the canonical per-origin mapping dumps,
    /// loads, and sequences — not just summary gauges.
    #[test]
    fn merge_is_order_independent(
        seqs in proptest::collection::vec((1usize..5, 1u64..6), 1..24),
        shuffle_seed in proptest::strategy::any::<u64>(),
        dups in proptest::collection::vec(0usize..24, 0..12),
    ) {
        // Build deltas whose payload is a pure function of
        // (origin, seq): a given origin's writer never publishes two
        // different states under one sequence number, which is exactly
        // the per-origin monotonicity the gossip protocol guarantees.
        // Payloads vary in size, overlap across sequences (so LWW must
        // actually replace), and include an empty node set (which the
        // merge filters out) to exercise the removal path.
        let deltas: Vec<StateDelta> = seqs
            .iter()
            .map(|&(origin, seq)| {
                let base = (origin as u32) * 64 + seq as u32;
                let mut mapping = vec![
                    (TargetId(base), vec![NodeId((base % 2) as usize)]),
                    (TargetId(origin as u32), vec![NodeId((seq % 2) as usize), NodeId(0)]),
                ];
                if seq % 2 == 0 {
                    mapping.push((TargetId(base + 1), vec![NodeId(1)]));
                    mapping.push((TargetId(base + 2), vec![])); // filtered on merge
                }
                StateDelta {
                    origin: FeId(origin),
                    seq,
                    loads: vec![seq as i64, origin as i64],
                    mapping,
                }
            })
            .collect();

        let mut a = TierView::new(FeId(0), 2);
        for d in &deltas {
            a.merge(d);
        }

        // Fisher–Yates permutation from the proptest-chosen seed, plus
        // arbitrary re-deliveries sprinkled in afterwards.
        let mut state = shuffle_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let mut b = TierView::new(FeId(0), 2);
        for &i in &order {
            b.merge(&deltas[i]);
        }
        for &d in &dups {
            b.merge(&deltas[d % deltas.len()]);
        }

        prop_assert_eq!(a.remote_load_fixed(), b.remote_load_fixed());
        prop_assert_eq!(a.num_origins(), b.num_origins());
        for o in 1..5 {
            let fe = FeId(o);
            prop_assert_eq!(a.origin_seq(fe), b.origin_seq(fe));
            prop_assert_eq!(a.origin_loads(fe), b.origin_loads(fe), "loads diverge at {}", fe);
            prop_assert_eq!(
                a.origin_mapping(fe),
                b.origin_mapping(fe),
                "adopted mapping diverges at {}", fe
            );
        }
    }
}
