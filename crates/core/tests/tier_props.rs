//! Property tests for the front-end tier layer: consistent-hash ring
//! rebalancing bounds and commutativity of the state merge.

use phttp_core::tier::{Ring, StateDelta, TierView};
use phttp_core::{FeId, NodeId};
use phttp_trace::TargetId;
use proptest::prelude::*;

fn owners(ring: &Ring, targets: u32) -> Vec<FeId> {
    (0..targets).map(|i| ring.owner(TargetId(i))).collect()
}

proptest! {
    /// Every target always has an owner, and that owner is a member —
    /// through arbitrary add/remove churn.
    #[test]
    fn no_target_is_ever_unowned(
        initial in 1usize..6,
        ops in proptest::collection::vec((0usize..8, proptest::strategy::any::<bool>()), 0..12),
        probe in proptest::collection::vec(0u32..10_000, 1..50),
    ) {
        let mut ring = Ring::new(initial);
        for (fe, add) in ops {
            if add {
                ring.add_fe(FeId(fe));
            } else if ring.len() > 1 {
                ring.remove_fe(FeId(fe));
            }
            for &t in &probe {
                let owner = ring.owner(TargetId(t));
                prop_assert!(
                    ring.contains(owner),
                    "target {t} owned by non-member {owner}"
                );
            }
        }
    }

    /// Removing one front-end moves exactly the keys it owned — every
    /// other key keeps its owner (bounded movement), and the moved keys
    /// land on surviving members.
    #[test]
    fn removal_moves_only_the_removed_share(
        members in 2usize..6,
        victim in 0usize..6,
        targets in 64u32..512,
    ) {
        prop_assume!(victim < members);
        let mut ring = Ring::new(members);
        let before = owners(&ring, targets);
        ring.remove_fe(FeId(victim));
        let after = owners(&ring, targets);
        for (t, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b == FeId(victim) {
                prop_assert!(ring.contains(*a), "moved key {t} landed off-ring");
                prop_assert!(*a != FeId(victim));
            } else {
                prop_assert_eq!(*a, *b, "unowned-by-victim key {} moved", t);
            }
        }
    }

    /// Adding one front-end only moves keys *to* the newcomer: if a
    /// key's owner changed at all, the new owner is the added member.
    #[test]
    fn addition_moves_keys_only_to_the_newcomer(
        members in 1usize..6,
        newcomer in 6usize..10,
        targets in 64u32..512,
    ) {
        let mut ring = Ring::new(members);
        let before = owners(&ring, targets);
        ring.add_fe(FeId(newcomer));
        let after = owners(&ring, targets);
        for (t, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                a == b || *a == FeId(newcomer),
                "key {} moved between pre-existing members ({} -> {})", t, b, a
            );
        }
    }

    /// The tier merge converges to the same view regardless of delivery
    /// order or duplication (commutative + idempotent LWW per origin).
    #[test]
    fn merge_is_order_independent(
        seqs in proptest::collection::vec((1usize..5, 1u64..6), 1..16),
        rot in 0usize..16,
        dup in 0usize..16,
    ) {
        // Build deltas whose payload is a pure function of
        // (origin, seq): a given origin's writer never publishes two
        // different states under one sequence number, which is exactly
        // the per-origin monotonicity the gossip protocol guarantees.
        let deltas: Vec<StateDelta> = seqs
            .iter()
            .map(|&(origin, seq)| {
                let t = (origin as u32) * 16 + seq as u32;
                StateDelta {
                    origin: FeId(origin),
                    seq,
                    loads: vec![seq as i64, origin as i64],
                    mapping: vec![(TargetId(t), vec![NodeId((t % 2) as usize)])],
                }
            })
            .collect();

        let mut a = TierView::new(FeId(0), 2);
        for d in &deltas {
            a.merge(d);
        }

        // Rotated order plus one duplicated delivery.
        let mut b = TierView::new(FeId(0), 2);
        let r = rot % deltas.len();
        for d in deltas[r..].iter().chain(&deltas[..r]) {
            b.merge(d);
        }
        b.merge(&deltas[dup % deltas.len()]);

        prop_assert_eq!(a.remote_load_fixed(), b.remote_load_fixed());
        for o in 1..5 {
            prop_assert_eq!(a.origin_seq(FeId(o)), b.origin_seq(FeId(o)));
        }
    }
}
