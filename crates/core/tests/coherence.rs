//! Cache-coherence feedback: semantics and concurrency regression tests.
//!
//! The contract under test (see `phttp_core::feedback`):
//!
//! * eviction reports remove stale believed mappings; admission reports
//!   only *confirm* beliefs (and update the mirror) — feedback never adds
//!   a mapping;
//! * the divergence gauge counts believed pairs the mirror says are not
//!   cached, and reaches 0 once beliefs and reports agree;
//! * `evict_node` composes with in-flight `apply_cache_feedback` batches:
//!   no mapping for the decommissioned node can be resurrected.

use std::sync::Arc;

use phttp_core::{
    CacheEvent, ConcurrentDispatcher, ConnId, ForwardSemantics, LardParams, NodeId, PolicyKind,
};
use phttp_trace::TargetId;

fn t(i: u32) -> TargetId {
    TargetId(i)
}

fn ext(nodes: usize) -> ConcurrentDispatcher {
    ConcurrentDispatcher::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        nodes,
        LardParams::default(),
    )
}

/// Plants a believed mapping directly (the policy-made beliefs the
/// feedback loop audits).
fn believe(d: &ConcurrentDispatcher, target: TargetId, node: NodeId) {
    d.mapping().write(target, |m| m.add_replica(target, node));
}

#[test]
fn eviction_report_removes_stale_belief() {
    let d = ext(2);
    believe(&d, t(1), NodeId(0));
    believe(&d, t(2), NodeId(0));
    d.apply_cache_feedback(
        NodeId(0),
        &[CacheEvent::Admit(t(1)), CacheEvent::Admit(t(2))],
    );
    assert_eq!(d.mapping_divergence(), 0);

    d.apply_cache_feedback(NodeId(0), &[CacheEvent::Evict(t(1))]);
    assert!(
        !d.mapping().is_mapped(t(1), NodeId(0)),
        "stale belief dropped"
    );
    assert!(d.mapping().is_mapped(t(2), NodeId(0)), "live belief kept");
    let snap = d.coherence();
    assert_eq!(snap.stale_removed, 1);
    assert_eq!(snap.confirmations, 2);
    assert_eq!(snap.reports, 2);
    assert_eq!(snap.divergence, 0);
    assert_eq!(snap.believed_pairs, 1);
}

#[test]
fn evict_then_readmit_within_one_batch_keeps_the_belief() {
    let d = ext(2);
    believe(&d, t(7), NodeId(1));
    // The node evicted 7 under pressure but read it back before the
    // report flushed: the final state is "cached", so the belief stands.
    d.apply_cache_feedback(
        NodeId(1),
        &[
            CacheEvent::Admit(t(7)),
            CacheEvent::Evict(t(7)),
            CacheEvent::Admit(t(7)),
        ],
    );
    assert!(d.mapping().is_mapped(t(7), NodeId(1)));
    assert_eq!(d.coherence().stale_removed, 0);
    assert_eq!(d.mapping_divergence(), 0);
}

#[test]
fn admissions_never_create_mappings() {
    let d = ext(2);
    // A node caches targets the dispatcher never mapped to it (e.g. it
    // served them laterally for a peer). Reports must not grow beliefs.
    d.apply_cache_feedback(
        NodeId(0),
        &[CacheEvent::Admit(t(10)), CacheEvent::Admit(t(11))],
    );
    assert_eq!(d.mapping().num_replicas(), 0);
    assert_eq!(d.coherence().confirmations, 0);
    assert!(d.mirror().contains(NodeId(0), t(10)));
}

#[test]
fn divergence_counts_unreported_beliefs() {
    let d = ext(3);
    believe(&d, t(1), NodeId(0));
    believe(&d, t(1), NodeId(1)); // replicated target
    believe(&d, t(2), NodeId(2));
    // No feedback yet: every believed pair is divergent.
    assert_eq!(d.mapping_divergence(), 3);
    d.apply_cache_feedback(NodeId(1), &[CacheEvent::Admit(t(1))]);
    assert_eq!(d.mapping_divergence(), 2);
    d.apply_cache_feedback(NodeId(0), &[CacheEvent::Admit(t(1))]);
    d.apply_cache_feedback(NodeId(2), &[CacheEvent::Admit(t(2))]);
    assert_eq!(d.mapping_divergence(), 0);
}

#[test]
fn feedback_does_not_touch_loads_or_connections() {
    let d = ext(2);
    let node = d.open_connection(ConnId(0), t(0));
    let loads = d.loads();
    d.apply_cache_feedback(node, &[CacheEvent::Admit(t(0)), CacheEvent::Evict(t(0))]);
    assert_eq!(d.loads(), loads);
    assert_eq!(d.active_connections(), 1);
    d.close_connection(ConnId(0));
    assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
}

#[test]
fn empty_report_is_a_noop() {
    let d = ext(2);
    d.apply_cache_feedback(NodeId(0), &[]);
    assert_eq!(d.coherence().reports, 0);
}

/// The control-plane failure detector calls `evict_node` from a reader
/// thread / reactor shard while other threads are mid-decision. The
/// eviction must compose with concurrent `open_connection` /
/// `assign_batch` / `close_connection` traffic: no panics, exact load
/// conservation after every connection closes, and a final eviction
/// (after the races stop) leaves the victim with zero believed
/// mappings. (Decisions made *after* an eviction may legitimately
/// re-map the victim — eviction drops belief, it does not fence the
/// policy — which is why only the post-race eviction asserts zero.)
#[test]
fn evict_node_composes_with_inflight_decisions() {
    let d = Arc::new(ext(4));
    let victim = NodeId(3);

    let deciders: Vec<_> = (0..4usize)
        .map(|w| {
            let d = d.clone();
            std::thread::spawn(move || {
                for i in 0..400u32 {
                    let conn = ConnId((w as u64) << 32 | i as u64);
                    d.open_connection(conn, t(i % 128));
                    let batch: Vec<TargetId> =
                        (0..4).map(|j| t((i * 7 + j + w as u32) % 128)).collect();
                    let _ = d.assign_batch(conn, &batch);
                    d.close_connection(conn);
                }
            })
        })
        .collect();

    for _ in 0..100 {
        d.evict_node(victim);
        std::thread::yield_now();
    }
    for f in deciders {
        f.join().unwrap();
    }

    // Exact fixed-point load conservation despite the racing evictions.
    assert_eq!(d.active_connections(), 0);
    assert!(
        d.loads().iter().all(|&l| l.abs() < 1e-12),
        "residual load: {:?}",
        d.loads()
    );
    // With the decision traffic stopped, one eviction is final.
    d.evict_node(victim);
    let mut victim_pairs = 0;
    d.mapping().for_each_pair(|_, n| {
        if n == victim {
            victim_pairs += 1;
        }
    });
    assert_eq!(victim_pairs, 0, "victim mappings survived the decommission");
}

/// The ISSUE's regression scenario: `evict_node` racing in-flight
/// feedback batches must leave the decommissioned node with **zero**
/// believed mappings — a report applied after (or interleaved with) the
/// decommission must not resurrect any.
#[test]
fn evict_node_composes_with_inflight_feedback() {
    let d = Arc::new(ext(4));
    const TARGETS: u32 = 512;
    let victim = NodeId(3);

    // Seed beliefs for every node, including the victim.
    for i in 0..TARGETS {
        believe(&d, t(i), NodeId((i as usize) % 4));
    }

    // Feedback threads: replay admit/evict churn for every node,
    // including batches that mention the victim's targets, while the
    // main thread decommissions the victim.
    let feeders: Vec<_> = (0..4usize)
        .map(|node| {
            let d = d.clone();
            std::thread::spawn(move || {
                for round in 0..200u32 {
                    let events: Vec<CacheEvent> = (0..TARGETS)
                        .filter(|i| (*i as usize) % 4 == node)
                        .flat_map(|i| {
                            if (i + round) % 3 == 0 {
                                vec![CacheEvent::Admit(t(i)), CacheEvent::Evict(t(i))]
                            } else {
                                vec![CacheEvent::Admit(t(i))]
                            }
                        })
                        .collect();
                    d.apply_cache_feedback(NodeId(node), &events);
                }
            })
        })
        .collect();

    // Decommission the victim repeatedly, racing the feeders.
    for _ in 0..50 {
        d.evict_node(victim);
        std::thread::yield_now();
    }
    for f in feeders {
        f.join().unwrap();
    }
    // One final decommission after all reports are in: nothing may
    // survive it, because feedback can only remove or confirm beliefs.
    d.evict_node(victim);

    let mut victim_pairs = 0;
    d.mapping().for_each_pair(|_, n| {
        if n == victim {
            victim_pairs += 1;
        }
    });
    assert_eq!(
        victim_pairs, 0,
        "resurrected mappings for a decommissioned node"
    );
    assert_eq!(d.mirror().cached_count(victim), 0);
    // The surviving nodes' beliefs remain audited: divergence reflects
    // exactly the pairs whose final reported state was "not cached".
    let mut residual = 0;
    d.mapping().for_each_pair(|target, n| {
        if !d.mirror().contains(n, target) {
            residual += 1;
        }
    });
    assert_eq!(d.mapping_divergence(), residual);
}
