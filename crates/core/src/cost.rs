//! The LARD cost metrics (Figure 4 of the paper).
//!
//! LARD balances locality against load with three costs, all measured in
//! *load units* — "the delay experienced by a request for a cached target at
//! an otherwise unloaded server":
//!
//! ```text
//! cost_balancing(t, s)   = 0                  if load(s) <  L_idle
//!                          ∞                  if load(s) >= L_overload
//!                          load(s) - L_idle   otherwise
//! cost_locality(t, s)    = 0 if t is mapped to s, else MissCost
//! cost_replacement(t, s) = 0 if load(s) < L_idle or t is mapped to s,
//!                          else MissCost
//! ```
//!
//! A request is assigned to the node minimizing the aggregate (sum) cost.
//!
//! The paper notes this formulation is provably equivalent to the original
//! ASPLOS '98 LARD when `L_idle = T_low` and `MissCost = T_high − T_low`;
//! the defaults below encode ASPLOS's `T_low = 25`, `T_high = 65` (the
//! scanned copy of the paper lost its numeric literals — see DESIGN.md §6.6).

use serde::{Deserialize, Serialize};

/// Tunable parameters of the LARD policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LardParams {
    /// Load below which a node counts as potentially under-utilized.
    pub l_idle: f64,
    /// Load at which queueing delay becomes unacceptable (infinite cost).
    pub l_overload: f64,
    /// Cost of a cache miss, in load units.
    pub miss_cost: f64,
    /// Extended LARD's "low disk utilization" bound: strictly fewer queued
    /// disk events than this counts as low.
    pub disk_queue_low: usize,
    /// Charge remote nodes 1/N load for the duration of a pipelined batch
    /// (the paper's accounting). Disabling this is an ablation knob: remote
    /// fetches then run unaccounted, so the balancing metric goes blind to
    /// forwarding load.
    pub batch_load_accounting: bool,
    /// Restrict forwarding candidates to nodes that cache the target (the
    /// paper's rule). Disabling considers every node — an ablation that
    /// shows why the restriction matters (forwarding to a non-caching node
    /// trades a local disk read for a remote one plus forwarding overhead).
    pub restrict_candidates: bool,
}

impl Default for LardParams {
    fn default() -> Self {
        LardParams {
            l_idle: 25.0,
            l_overload: 130.0,
            miss_cost: 40.0,
            disk_queue_low: 1,
            batch_load_accounting: true,
            restrict_candidates: true,
        }
    }
}

impl LardParams {
    /// Validates the parameter set, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        // NaN fails every comparison, so each bound is written to reject it.
        if self.l_idle.is_nan() || self.l_idle < 0.0 {
            return Err(format!("l_idle must be >= 0, got {}", self.l_idle));
        }
        if self.l_overload.is_nan() || self.l_overload <= self.l_idle {
            return Err(format!(
                "l_overload ({}) must exceed l_idle ({})",
                self.l_overload, self.l_idle
            ));
        }
        if self.miss_cost.is_nan() || self.miss_cost < 0.0 {
            return Err(format!("miss_cost must be >= 0, got {}", self.miss_cost));
        }
        Ok(())
    }
}

/// `cost_balancing`: queueing delay behind already-assigned work.
pub fn cost_balancing(load: f64, p: &LardParams) -> f64 {
    if load < p.l_idle {
        0.0
    } else if load >= p.l_overload {
        f64::INFINITY
    } else {
        load - p.l_idle
    }
}

/// `cost_locality`: delay from the presence or absence of the target in the
/// node's cache (as believed by the front-end's mapping table).
pub fn cost_locality(mapped: bool, p: &LardParams) -> f64 {
    if mapped {
        0.0
    } else {
        p.miss_cost
    }
}

/// `cost_replacement`: potential future cost of evicting another target to
/// make room for this one.
pub fn cost_replacement(load: f64, mapped: bool, p: &LardParams) -> f64 {
    if load < p.l_idle || mapped {
        0.0
    } else {
        p.miss_cost
    }
}

/// Aggregate cost of sending a request for a (possibly mapped) target to a
/// node at the given load: the sum of the three metrics.
pub fn aggregate_cost(load: f64, mapped: bool, p: &LardParams) -> f64 {
    cost_balancing(load, p) + cost_locality(mapped, p) + cost_replacement(load, mapped, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LardParams {
        LardParams::default()
    }

    #[test]
    fn balancing_piecewise() {
        let p = p();
        assert_eq!(cost_balancing(0.0, &p), 0.0);
        assert_eq!(cost_balancing(24.999, &p), 0.0);
        assert_eq!(cost_balancing(25.0, &p), 0.0); // == l_idle: "otherwise" branch, 25-25
        assert_eq!(cost_balancing(65.0, &p), 40.0);
        assert!(cost_balancing(130.0, &p).is_infinite());
        assert!(cost_balancing(500.0, &p).is_infinite());
    }

    #[test]
    fn locality_is_miss_cost_when_unmapped() {
        let p = p();
        assert_eq!(cost_locality(true, &p), 0.0);
        assert_eq!(cost_locality(false, &p), 40.0);
    }

    #[test]
    fn replacement_zero_when_idle_or_mapped() {
        let p = p();
        assert_eq!(cost_replacement(10.0, false, &p), 0.0); // idle
        assert_eq!(cost_replacement(80.0, true, &p), 0.0); // mapped
        assert_eq!(cost_replacement(80.0, false, &p), 40.0); // busy + unmapped
    }

    #[test]
    fn aggregate_reproduces_asplos_thresholds() {
        // Equivalence check (paper footnote): with L_idle = T_low = 25 and
        // MissCost = T_high − T_low = 40, a mapped node keeps winning over an
        // idle unmapped node until its load reaches T_high = 65.
        let p = p();
        let idle_unmapped = aggregate_cost(0.0, false, &p); // = 40
        assert_eq!(idle_unmapped, 40.0);
        assert!(aggregate_cost(64.9, true, &p) < idle_unmapped);
        assert!(aggregate_cost(65.1, true, &p) > idle_unmapped);
    }

    #[test]
    fn overload_always_loses() {
        let p = p();
        // Even a mapped overloaded node loses to an unmapped busy node.
        assert!(aggregate_cost(130.0, true, &p) > aggregate_cost(129.0, false, &p));
    }

    #[test]
    fn validate_catches_bad_params() {
        assert!(LardParams::default().validate().is_ok());
        let bad = LardParams {
            l_overload: 10.0,
            ..LardParams::default()
        };
        assert!(bad.validate().is_err());
        let neg = LardParams {
            miss_cost: -1.0,
            ..LardParams::default()
        };
        assert!(neg.validate().is_err());
        let neg_idle = LardParams {
            l_idle: -5.0,
            ..LardParams::default()
        };
        assert!(neg_idle.validate().is_err());
    }
}
