//! Per-node health gating: the circuit breaker between policy
//! decisions and assignment.
//!
//! PR 5 taught the cluster to *evict* a dead back-end's mappings; this
//! layer decides whether a node should receive traffic at all. Every
//! node carries a three-state breaker:
//!
//! ```text
//!            fail_threshold consecutive failures
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │
//!     │ probation successes                           │ cooldown_ticks
//!     │                                               ▼
//!   HalfOpen ◀────────────────────────────────────────┘
//!     │
//!     └── any failure ──▶ Open (cooldown restarts)
//! ```
//!
//! * **Closed** — healthy: every admission request passes.
//! * **Open** — quarantined: no admission passes. Entered by
//!   [`HealthGate::record_failure`] crossing the consecutive-failure
//!   threshold, or directly by [`HealthGate::force_open`] (the
//!   control-plane failure detector, node decommissioning, and standby
//!   members that have not joined yet all use this).
//! * **HalfOpen** — probation: exactly
//!   [`HealthConfig::probation`] admissions pass
//!   ([`HealthGate::try_admit`] hands out the permits); that many
//!   recorded successes close the breaker, any recorded failure
//!   re-opens it.
//!
//! Time is **explicit**: nothing in here reads a clock. The host calls
//! [`HealthGate::tick`] (or [`HealthGate::tick_all`]) to advance Open
//! cooldowns — wall-clock hosts (the prototype) tick from a timer or a
//! test hook, the simulator ticks from its virtual-time `HealthProbe`
//! event, and both get byte-identical breaker behaviour for the same
//! tick sequence.
//!
//! The gate deliberately **fails open**: if every node is Open, the
//! dispatcher routes to the policy's original pick rather than dropping
//! the request — a fully-quarantined cluster serving degraded beats one
//! serving nothing.

use parking_lot::{LockClass, Mutex};

use crate::types::NodeId;

/// Breaker state of one node. See the module docs for the transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Healthy: admissions pass, consecutive failures are counted.
    Closed,
    /// Quarantined: no admissions pass until the cooldown elapses.
    Open,
    /// Probation: a bounded quota of admissions passes while the node
    /// proves itself.
    HalfOpen,
}

/// Circuit-breaker tuning. All fields must be at least 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive recorded failures that trip Closed → Open.
    pub fail_threshold: u32,
    /// [`HealthGate::tick`]s a node stays Open before probation.
    pub cooldown_ticks: u32,
    /// Admissions HalfOpen hands out — and the successes required to
    /// close the breaker again.
    pub probation: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            fail_threshold: 3,
            cooldown_ticks: 2,
            probation: 4,
        }
    }
}

impl HealthConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.fail_threshold == 0 {
            return Err("health fail_threshold must be at least 1".into());
        }
        if self.cooldown_ticks == 0 {
            return Err("health cooldown_ticks must be at least 1".into());
        }
        if self.probation == 0 {
            return Err("health probation must be at least 1".into());
        }
        Ok(())
    }
}

/// One node's breaker bookkeeping.
#[derive(Debug)]
struct NodeHealth {
    state: HealthState,
    /// Consecutive failures while Closed.
    consecutive_failures: u32,
    /// Ticks left before Open relaxes to HalfOpen.
    cooldown_left: u32,
    /// Admission permits left while HalfOpen.
    permits_left: u32,
    /// Successes recorded while HalfOpen.
    successes: u32,
}

impl NodeHealth {
    fn closed() -> Self {
        NodeHealth {
            state: HealthState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            permits_left: 0,
            successes: 0,
        }
    }

    fn open(cfg: &HealthConfig) -> Self {
        NodeHealth {
            state: HealthState::Open,
            consecutive_failures: 0,
            cooldown_left: cfg.cooldown_ticks,
            permits_left: 0,
            successes: 0,
        }
    }

    fn half_open(cfg: &HealthConfig) -> Self {
        NodeHealth {
            state: HealthState::HalfOpen,
            consecutive_failures: 0,
            cooldown_left: 0,
            permits_left: cfg.probation,
            successes: 0,
        }
    }
}

/// The per-node breaker bank the dispatcher consults between the policy
/// decision and the assignment. `&self` throughout: one small mutex per
/// node, never held across any other lock.
#[derive(Debug)]
pub struct HealthGate {
    cfg: HealthConfig,
    nodes: Box<[Mutex<NodeHealth>]>,
}

impl HealthGate {
    /// Creates a gate with every node Closed (healthy).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or the configuration is invalid.
    pub fn new(num_nodes: usize, cfg: HealthConfig) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one back-end");
        if let Err(e) = cfg.validate() {
            panic!("invalid health config: {e}");
        }
        HealthGate {
            cfg,
            nodes: (0..num_nodes)
                .map(|n| Mutex::new_classed(LockClass::health(n as u32), NodeHealth::closed()))
                .collect(),
        }
    }

    /// Number of gated nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration this gate runs.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// The node's current breaker state.
    pub fn state(&self, node: NodeId) -> HealthState {
        self.nodes[node.0].lock().state
    }

    /// Whether the node would currently accept an admission, without
    /// consuming a probation permit. Used to *select among* candidates;
    /// the winner is then committed with [`try_admit`](Self::try_admit).
    pub fn permitted(&self, node: NodeId) -> bool {
        let h = self.nodes[node.0].lock();
        match h.state {
            HealthState::Closed => true,
            HealthState::Open => false,
            HealthState::HalfOpen => h.permits_left > 0,
        }
    }

    /// Admits one unit of traffic to the node if its breaker allows:
    /// always in Closed, never in Open, and — atomically consuming one
    /// permit — at most [`HealthConfig::probation`] times per HalfOpen
    /// episode.
    pub fn try_admit(&self, node: NodeId) -> bool {
        let mut h = self.nodes[node.0].lock();
        match h.state {
            HealthState::Closed => true,
            HealthState::Open => false,
            HealthState::HalfOpen => {
                if h.permits_left > 0 {
                    h.permits_left -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful interaction with the node. Clears the
    /// consecutive-failure count while Closed; while HalfOpen, counts
    /// toward the probation successes and closes the breaker once
    /// [`HealthConfig::probation`] of them arrive.
    pub fn record_success(&self, node: NodeId) {
        let mut h = self.nodes[node.0].lock();
        match h.state {
            HealthState::Closed => h.consecutive_failures = 0,
            HealthState::Open => {}
            HealthState::HalfOpen => {
                h.successes += 1;
                if h.successes >= self.cfg.probation {
                    *h = NodeHealth::closed();
                }
            }
        }
    }

    /// Records a failed interaction with the node. Trips Closed → Open
    /// after [`HealthConfig::fail_threshold`] consecutive failures; a
    /// HalfOpen failure re-opens immediately; an Open failure restarts
    /// the cooldown.
    pub fn record_failure(&self, node: NodeId) {
        let mut h = self.nodes[node.0].lock();
        match h.state {
            HealthState::Closed => {
                h.consecutive_failures += 1;
                if h.consecutive_failures >= self.cfg.fail_threshold {
                    *h = NodeHealth::open(&self.cfg);
                }
            }
            HealthState::HalfOpen => *h = NodeHealth::open(&self.cfg),
            HealthState::Open => h.cooldown_left = self.cfg.cooldown_ticks,
        }
    }

    /// Advances one node's cooldown by one tick: an Open node whose
    /// cooldown reaches zero enters HalfOpen with a fresh probation
    /// quota. Closed and HalfOpen nodes are unaffected.
    pub fn tick(&self, node: NodeId) {
        let mut h = self.nodes[node.0].lock();
        if h.state == HealthState::Open {
            h.cooldown_left = h.cooldown_left.saturating_sub(1);
            if h.cooldown_left == 0 {
                *h = NodeHealth::half_open(&self.cfg);
            }
        }
    }

    /// [`tick`](Self::tick) for every node.
    pub fn tick_all(&self) {
        for i in 0..self.nodes.len() {
            self.tick(NodeId(i));
        }
    }

    /// Quarantines the node immediately (full cooldown), regardless of
    /// its current state. The control-plane failure detector and
    /// standby (not-yet-joined) members use this.
    pub fn force_open(&self, node: NodeId) {
        *self.nodes[node.0].lock() = NodeHealth::open(&self.cfg);
    }

    /// Resets the node to Closed (healthy), regardless of its current
    /// state. A completed join handshake uses this — a freshly warmed
    /// member starts with a clean slate.
    pub fn reset(&self, node: NodeId) {
        *self.nodes[node.0].lock() = NodeHealth::closed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(n: usize) -> HealthGate {
        HealthGate::new(n, HealthConfig::default())
    }

    #[test]
    fn starts_closed_and_admits() {
        let g = gate(2);
        assert_eq!(g.state(NodeId(0)), HealthState::Closed);
        assert!(g.permitted(NodeId(0)));
        assert!(g.try_admit(NodeId(0)));
    }

    #[test]
    fn consecutive_failures_trip_the_breaker() {
        let g = gate(1);
        let n = NodeId(0);
        g.record_failure(n);
        g.record_failure(n);
        assert_eq!(g.state(n), HealthState::Closed, "below threshold");
        // A success in between resets the streak.
        g.record_success(n);
        g.record_failure(n);
        g.record_failure(n);
        assert_eq!(g.state(n), HealthState::Closed);
        g.record_failure(n);
        assert_eq!(g.state(n), HealthState::Open);
        assert!(!g.try_admit(n));
        assert!(!g.permitted(n));
    }

    #[test]
    fn cooldown_ticks_relax_to_half_open() {
        let g = gate(1);
        let n = NodeId(0);
        g.force_open(n);
        g.tick(n);
        assert_eq!(g.state(n), HealthState::Open, "one tick of two");
        g.tick(n);
        assert_eq!(g.state(n), HealthState::HalfOpen);
    }

    #[test]
    fn half_open_admits_exactly_the_probation_quota() {
        let cfg = HealthConfig {
            probation: 3,
            ..HealthConfig::default()
        };
        let g = HealthGate::new(1, cfg);
        let n = NodeId(0);
        g.force_open(n);
        g.tick(n);
        g.tick(n);
        assert_eq!(g.state(n), HealthState::HalfOpen);
        let admitted = (0..10).filter(|_| g.try_admit(n)).count();
        assert_eq!(admitted, 3, "exactly the probation quota passes");
        assert!(!g.permitted(n), "quota exhausted");
    }

    #[test]
    fn probation_successes_close_failure_reopens() {
        let cfg = HealthConfig {
            probation: 2,
            cooldown_ticks: 1,
            ..HealthConfig::default()
        };
        let g = HealthGate::new(2, cfg);
        let n = NodeId(0);
        g.force_open(n);
        g.tick(n);
        assert_eq!(g.state(n), HealthState::HalfOpen);
        assert!(g.try_admit(n));
        g.record_success(n);
        assert_eq!(g.state(n), HealthState::HalfOpen, "one of two successes");
        g.record_success(n);
        assert_eq!(g.state(n), HealthState::Closed);

        // The failure path: HalfOpen → Open immediately.
        let m = NodeId(1);
        g.force_open(m);
        g.tick(m);
        assert_eq!(g.state(m), HealthState::HalfOpen);
        g.record_failure(m);
        assert_eq!(g.state(m), HealthState::Open);
        // And a fresh probation next episode: full quota again.
        g.tick(m);
        assert_eq!(g.state(m), HealthState::HalfOpen);
        assert!(g.try_admit(m));
        assert!(g.try_admit(m));
        assert!(!g.try_admit(m));
    }

    #[test]
    fn open_failure_restarts_cooldown() {
        let cfg = HealthConfig {
            cooldown_ticks: 2,
            ..HealthConfig::default()
        };
        let g = HealthGate::new(1, cfg);
        let n = NodeId(0);
        g.force_open(n);
        g.tick(n);
        g.record_failure(n); // cooldown restarts
        g.tick(n);
        assert_eq!(
            g.state(n),
            HealthState::Open,
            "restart must delay probation"
        );
        g.tick(n);
        assert_eq!(g.state(n), HealthState::HalfOpen);
    }

    #[test]
    fn reset_closes_from_any_state() {
        let g = gate(1);
        let n = NodeId(0);
        g.force_open(n);
        g.reset(n);
        assert_eq!(g.state(n), HealthState::Closed);
        assert!(g.try_admit(n));
    }

    #[test]
    fn tick_all_covers_every_node() {
        let cfg = HealthConfig {
            cooldown_ticks: 1,
            ..HealthConfig::default()
        };
        let g = HealthGate::new(3, cfg);
        g.force_open(NodeId(0));
        g.force_open(NodeId(2));
        g.tick_all();
        assert_eq!(g.state(NodeId(0)), HealthState::HalfOpen);
        assert_eq!(g.state(NodeId(1)), HealthState::Closed);
        assert_eq!(g.state(NodeId(2)), HealthState::HalfOpen);
    }

    #[test]
    #[should_panic(expected = "probation")]
    fn zero_probation_is_invalid() {
        let _ = HealthGate::new(
            1,
            HealthConfig {
                probation: 0,
                ..HealthConfig::default()
            },
        );
    }
}
