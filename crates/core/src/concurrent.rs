//! The lock-sharded concurrent dispatcher.
//!
//! [`ConcurrentDispatcher`] composes the three layers —
//! [`Policy`] (pure decisions),
//! [`LoadTracker`] (atomic load accounting),
//! and [`ShardedMappingTable`] —
//! behind `&self` methods safe to call from any number of threads.
//!
//! ## Locking discipline
//!
//! The hot path (`open_connection`, `assign_request`) takes, at most:
//!
//! 1. the **one mapping shard** covering the request's target, held
//!    across the policy decision and its mapping update (per-target
//!    atomicity); WRR skips it entirely;
//! 2. the **one connection shard** covering the request's connection,
//!    held only to read or update that connection's state.
//!
//! Load reads/writes are plain atomics. There is **no global lock**:
//! requests for different targets on different connections never
//! contend — the paper's requirement that the front-end stay off the
//! data path, applied to its own decision path.
//!
//! The batched entry point ([`assign_batch`](ConcurrentDispatcher::assign_batch))
//! amortizes further: a whole pipelined batch costs **one** connection-shard
//! acquisition and one write acquisition per *distinct* mapping shard the
//! batch touches, instead of up to two conn-shard and two mapping-shard
//! acquisitions per request. When more than one mapping shard is held,
//! shards are always acquired in ascending index order *after* the
//! connection shard — the workspace lock order that makes deadlock between
//! concurrent batches impossible (see ARCHITECTURE.md, "Batched dispatch").
//!
//! ## Consistency model
//!
//! Load reads during a decision are racy by design: two threads may
//! both see node `k` as least-loaded and both pick it. The same race
//! exists in any real front-end whose load reports lag its decisions
//! (the paper's disk-queue reports arrive over control sessions); it
//! perturbs tie-breaks, never accounting. Accounting itself is exact:
//! every charge is paired with a discharge of the same fixed-point
//! value, so closing all connections returns every load to zero —
//! see `tests/concurrent_stress.rs`.
//!
//! Callers drive each connection from one thread at a time (the
//! prototype's one-handler-per-connection invariant); lifecycle calls
//! for *different* connections may interleave arbitrarily.

use std::sync::atomic::Ordering;

use phttp_trace::TargetId;

use std::collections::HashMap;

use crate::cost::LardParams;
use crate::feedback::{CacheEvent, CacheMirror, CoherenceSnapshot, CoherenceStats};
use crate::health::{HealthConfig, HealthGate};
use crate::load::{LoadTracker, LOAD_UNIT};
use crate::policy::{ForwardSemantics, MapEffect, Policy, PolicyKind};
use crate::shard::{ConnState, ConnTable, ShardedMappingTable};
use crate::tier::{DispatcherSnapshot, MergeOutcome};
use crate::types::{Assignment, ConnId, NodeId};

/// Largest pipelined batch [`ConcurrentDispatcher::assign_batch`] will
/// decide under held shard locks in one piece; longer batches are
/// processed in chunks of this size so a hostile client pipelining
/// thousands of requests cannot pin a connection shard (and a set of
/// mapping shards) for an unbounded stretch. Chunking is invisible to
/// callers: decisions and accounting are identical either way because
/// the batch size used for 1/N load accounting is fixed up front.
const MAX_BATCH_CHUNK: usize = 64;

/// Construction parameters for both dispatcher façades.
#[derive(Debug, Clone, Copy)]
pub struct DispatcherConfig {
    /// Which distribution policy to run.
    pub policy: PolicyKind,
    /// What a remote assignment means mechanically.
    pub semantics: ForwardSemantics,
    /// Number of back-end nodes.
    pub num_nodes: usize,
    /// LARD cost-metric parameters.
    pub params: LardParams,
    /// Mapping-table lock shards (rounded up to a power of two).
    pub mapping_shards: usize,
    /// Connection-table lock shards (rounded up to a power of two).
    pub conn_shards: usize,
    /// Per-node circuit-breaker tuning (see [`HealthGate`]).
    pub health: HealthConfig,
}

impl DispatcherConfig {
    /// A config with the default shard counts.
    pub fn new(
        policy: PolicyKind,
        semantics: ForwardSemantics,
        num_nodes: usize,
        params: LardParams,
    ) -> Self {
        DispatcherConfig {
            policy,
            semantics,
            num_nodes,
            params,
            mapping_shards: 32,
            conn_shards: 64,
            health: HealthConfig::default(),
        }
    }

    /// Overrides both shard counts (useful to measure sharding's effect).
    pub fn with_shards(mut self, mapping: usize, conn: usize) -> Self {
        self.mapping_shards = mapping;
        self.conn_shards = conn;
        self
    }

    /// Overrides the circuit-breaker tuning.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }
}

/// Thread-safe dispatcher: the same policy semantics as
/// [`Dispatcher`](crate::dispatcher::Dispatcher), behind `&self`.
pub struct ConcurrentDispatcher {
    policy: Box<dyn Policy>,
    semantics: ForwardSemantics,
    params: LardParams,
    loads: LoadTracker,
    mapping: ShardedMappingTable,
    conns: ConnTable,
    /// Reconstruction of each back-end's actual cache contents, fed by
    /// control-session feedback reports.
    mirror: CacheMirror,
    /// Feedback counters.
    coherence: CoherenceStats,
    /// Per-node circuit breakers, consulted between every policy
    /// decision and the assignment it becomes.
    health: HealthGate,
}

impl ConcurrentDispatcher {
    /// Builds a dispatcher from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or the parameters fail validation.
    pub fn from_config(config: DispatcherConfig) -> Self {
        if let Err(e) = config.params.validate() {
            panic!("invalid LARD parameters: {e}");
        }
        ConcurrentDispatcher {
            policy: config.policy.build(),
            semantics: config.semantics,
            params: config.params,
            loads: LoadTracker::new(config.num_nodes),
            mapping: ShardedMappingTable::new(config.mapping_shards),
            conns: ConnTable::new(config.conn_shards),
            mirror: CacheMirror::new(config.num_nodes),
            coherence: CoherenceStats::default(),
            health: HealthGate::new(config.num_nodes, config.health),
        }
    }

    /// Convenience constructor with default shard counts.
    pub fn new(
        policy: PolicyKind,
        semantics: ForwardSemantics,
        num_nodes: usize,
        params: LardParams,
    ) -> Self {
        Self::from_config(DispatcherConfig::new(policy, semantics, num_nodes, params))
    }

    /// Number of back-end nodes.
    pub fn num_nodes(&self) -> usize {
        self.loads.num_nodes()
    }

    /// Current per-node load estimates (connections + fractional fetches).
    pub fn loads(&self) -> Vec<f64> {
        self.loads.loads()
    }

    /// The load-tracking layer (read access for diagnostics/tests).
    pub fn load_tracker(&self) -> &LoadTracker {
        &self.loads
    }

    /// The policy this dispatcher runs.
    pub fn policy(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// The configured forwarding semantics.
    pub fn semantics(&self) -> ForwardSemantics {
        self.semantics
    }

    /// The sharded mapping table (for metrics/diagnostics).
    pub fn mapping(&self) -> &ShardedMappingTable {
        &self.mapping
    }

    /// Number of connections currently tracked.
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// Records a back-end's disk queue depth (conveyed over the control
    /// session in the prototype; read directly in the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn report_disk_queue(&self, node: NodeId, depth: usize) {
        self.loads.set_disk_queue(node, depth);
    }

    /// Applies one batched cache-feedback report from `node` — the
    /// control-plane message that keeps the mapping belief coherent with
    /// the node's real cache. `events` is the node's ordered stream of
    /// admissions and evictions since its last report.
    ///
    /// Effects, in order:
    ///
    /// 1. the per-node [`CacheMirror`] replays the events (so the
    ///    dispatcher always holds an exact running copy of the node's
    ///    cache contents);
    /// 2. every distinct target whose **final** state is *not cached*
    ///    loses its believed `(target, node)` mapping, in one batched
    ///    [`remove_stale`](ShardedMappingTable::remove_stale) call —
    ///    each covering shard write-locked once, ascending index order
    ///    (the `write_set` lock discipline);
    /// 3. every distinct target whose final state *is* cached and is
    ///    currently believed mapped counts as a confirmation.
    ///
    /// Feedback never **adds** a mapping, so it composes with concurrent
    /// [`evict_node`](Self::evict_node): an in-flight report cannot
    /// resurrect beliefs about a decommissioned node (regression-tested
    /// in `tests/coherence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn apply_cache_feedback(&self, node: NodeId, events: &[CacheEvent]) {
        if events.is_empty() {
            return;
        }
        self.coherence.reports.fetch_add(1, Ordering::Relaxed);
        let (admits, evicts) = events.iter().fold((0u64, 0u64), |(a, e), ev| match ev {
            CacheEvent::Admit(_) => (a + 1, e),
            CacheEvent::Evict(_) => (a, e + 1),
        });
        self.coherence
            .admit_events
            .fetch_add(admits, Ordering::Relaxed);
        self.coherence
            .evict_events
            .fetch_add(evicts, Ordering::Relaxed);

        // The mirror lock is released before any mapping shard is taken
        // (see the CacheMirror lock-order note).
        let finals = self.mirror.apply(node, events);
        let (cached, gone): (Vec<_>, Vec<_>) = finals.into_iter().partition(|&(_, c)| c);
        let stale: Vec<TargetId> = gone.into_iter().map(|(t, _)| t).collect();
        let removed = self.mapping.remove_stale(node, &stale);
        self.coherence
            .stale_removed
            .fetch_add(removed, Ordering::Relaxed);
        let confirms = cached
            .into_iter()
            .filter(|&(t, _)| self.mapping.is_mapped(t, node))
            .count() as u64;
        self.coherence
            .confirmations
            .fetch_add(confirms, Ordering::Relaxed);
    }

    /// The belief-vs-reality gap: believed `(target, node)` pairs whose
    /// target the mirror says is **not** cached on that node. With
    /// feedback off the mirror stays empty and this equals the total
    /// believed pairs; with feedback on and all reports applied, a
    /// quiescent system converges to 0. O(mapping size) — call it at
    /// reporting granularity, not per decision.
    pub fn mapping_divergence(&self) -> u64 {
        // Collect believed pairs grouped by node first (shard read locks
        // only), then check each node's mirror set under ONE lock — not
        // one mirror lock cycle per pair, and no mirror lock is ever
        // held while a shard lock is.
        let mut per_node: Vec<Vec<TargetId>> = vec![Vec::new(); self.num_nodes()];
        self.mapping.for_each_pair(|t, n| per_node[n.0].push(t));
        per_node
            .into_iter()
            .enumerate()
            .map(|(i, targets)| self.mirror.count_missing(NodeId(i), &targets))
            .sum()
    }

    /// Coherence counters plus the current divergence and believed-pair
    /// gauges, in one snapshot.
    pub fn coherence(&self) -> CoherenceSnapshot {
        let mut snap = self.coherence.snapshot();
        snap.divergence = self.mapping_divergence();
        snap.believed_pairs = self.mapping.num_replicas() as u64;
        snap
    }

    /// The cheap half of [`coherence`](Self::coherence): counters only,
    /// with the O(mapping size) divergence/believed-pair gauges left at
    /// zero. For callers that compute their own gauges (the simulator
    /// audits against its ground-truth caches) or only want the report
    /// accounting.
    pub fn coherence_counters(&self) -> CoherenceSnapshot {
        self.coherence.snapshot()
    }

    /// The cache-contents mirror (diagnostics/tests).
    pub fn mirror(&self) -> &CacheMirror {
        &self.mirror
    }

    /// The per-node circuit breakers. Hosts drive cooldowns through
    /// [`HealthGate::tick_all`] and report request outcomes through
    /// [`HealthGate::record_success`]/[`HealthGate::record_failure`];
    /// the dispatcher itself consults the gate on every routing
    /// decision.
    pub fn health(&self) -> &HealthGate {
        &self.health
    }

    /// Sets a node's relative capacity weight (see
    /// [`LoadTracker::set_weight`]): policies compare
    /// capacity-normalized loads, so a weight-`w` node attracts about
    /// `w`× the traffic of a weight-1 node at equal rawness.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `weight == 0`.
    pub fn set_node_weight(&self, node: NodeId, weight: u32) {
        self.loads.set_weight(node, weight);
    }

    /// Warms up beliefs for a (re)joining node from its admission-report
    /// journal — the mapping-*adding* counterpart of
    /// [`apply_cache_feedback`](Self::apply_cache_feedback), which only
    /// removes or confirms.
    ///
    /// The node's prior mirrored contents and believed mappings are
    /// dropped first, so the call is **absolute**: afterwards the
    /// dispatcher believes exactly what `events` fold to. Every target
    /// whose final state is *cached* gets a believed `(target, node)`
    /// replica installed (one write-shard acquisition per target —
    /// join granularity, off the hot path), and the node's breaker is
    /// reset to Closed: a freshly warmed member starts clean.
    ///
    /// Returns the number of believed pairs installed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn warm_up(&self, node: NodeId, events: &[CacheEvent]) -> usize {
        self.mapping.evict_node(node);
        self.mirror.clear(node);
        // Mirror lock released before any mapping shard is taken (the
        // CacheMirror lock-order rule).
        let finals = self.mirror.apply(node, events);
        let mut installed = 0;
        for (target, cached) in finals {
            if cached {
                self.mapping.write(target, |m| m.add_replica(target, node));
                installed += 1;
            }
        }
        self.health.reset(node);
        installed
    }

    /// Exports this dispatcher's tier-relevant state: **locally
    /// charged** fixed-point loads (remote bias excluded, so exporting
    /// and re-importing cannot double-count) and the full believed
    /// mapping, targets ascending. Shard read locks only; the snapshot
    /// is a consistent-enough gossip payload, not a transaction.
    pub fn snapshot(&self) -> DispatcherSnapshot {
        let loads = (0..self.num_nodes())
            .map(|i| self.loads.local_fixed(NodeId(i)))
            .collect();
        let mut grouped: HashMap<phttp_trace::TargetId, Vec<NodeId>> = HashMap::new();
        self.mapping
            .for_each_pair(|t, n| grouped.entry(t).or_default().push(n));
        let mut mapping: Vec<_> = grouped.into_iter().collect();
        mapping.sort_by_key(|(t, _)| t.0);
        DispatcherSnapshot { loads, mapping }
    }

    /// Materializes a peer's merged share into the local tables: each
    /// upsert replaces the target's mapping with the owner's belief,
    /// each removal drops it. One write-shard acquisition per target —
    /// gossip granularity, off the dispatch hot path.
    pub fn adopt_merge(&self, outcome: &MergeOutcome) {
        for (target, nodes) in &outcome.upserts {
            self.mapping.write(*target, |m| m.set_nodes(*target, nodes));
        }
        for target in &outcome.removals {
            self.mapping.write(*target, |m| m.set_nodes(*target, &[]));
        }
    }

    /// Overwrites every node's remote-load bias with the merged
    /// tier-view figure (see [`TierView::remote_load_fixed`](crate::tier::TierView::remote_load_fixed)).
    ///
    /// # Panics
    ///
    /// Panics if `remote.len() != num_nodes()`.
    pub fn set_remote_loads(&self, remote: &[i64]) {
        assert_eq!(remote.len(), self.num_nodes(), "remote-load length");
        for (i, &r) in remote.iter().enumerate() {
            self.loads.set_remote_fixed(NodeId(i), r);
        }
    }

    /// Decommissions `node` for mapping purposes: drops every believed
    /// mapping that references it and forgets its mirrored cache
    /// contents. Safe to race with [`apply_cache_feedback`](Self::apply_cache_feedback)
    /// — feedback only removes or confirms beliefs, so a concurrent
    /// report cannot resurrect the node's mappings.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn evict_node(&self, node: NodeId) {
        self.mapping.evict_node(node);
        self.mirror.clear(node);
        // A node we just declared dead must not win another pick until
        // it either joins back (breaker reset) or serves out a probation.
        self.health.force_open(node);
    }

    /// Applies a decision's mapping effect to its chosen/serving node.
    fn apply_effect(
        m: &mut crate::mapping::MappingTable,
        effect: MapEffect,
        target: TargetId,
        node: NodeId,
    ) {
        match effect {
            MapEffect::None => {}
            MapEffect::AssignExclusive => m.assign_exclusive(target, node),
            MapEffect::AddReplica => m.add_replica(target, node),
        }
    }

    /// Whether applying `effect` would leave the table unchanged. Lets
    /// the hot path finish under a shared (read) shard lock in steady
    /// state — a mapped target served by its mapped node, or a replica
    /// "added" to a node that already has it — and escalate to the
    /// exclusive lock only when the table actually changes.
    fn effect_is_noop(
        m: &crate::mapping::MappingTable,
        effect: MapEffect,
        target: TargetId,
        node: NodeId,
    ) -> bool {
        match effect {
            MapEffect::None => true,
            MapEffect::AddReplica => m.is_mapped(target, node),
            MapEffect::AssignExclusive => m.nodes(target) == [node],
        }
    }

    /// Health-gates a per-request decision **before** its mapping effect
    /// is applied: a `Remote` assignment to a node whose breaker refuses
    /// traffic degrades to serving locally with *no* mapping change.
    ///
    /// Gating before the effect matters for coherence: applying
    /// `AddReplica` for a node that never receives the request would
    /// plant a believed pair no cache event can ever confirm or remove —
    /// permanent divergence. [`HealthGate::permitted`] (non-consuming)
    /// keeps the optimistic-read and write-redo passes consistent;
    /// probation permits are consumed per *connection* in
    /// [`open_connection`](Self::open_connection), not per request.
    fn gate_assignment(
        &self,
        assignment: Assignment,
        effect: MapEffect,
    ) -> (Assignment, MapEffect) {
        if let Assignment::Remote(k) = assignment {
            if !self.health.permitted(k) {
                return (Assignment::Local, MapEffect::None);
            }
        }
        (assignment, effect)
    }

    /// Finds a replacement connection-handling node after the policy's
    /// pick was refused by its breaker: tries the remaining nodes in
    /// ascending capacity-normalized load until one's breaker admits
    /// ([`HealthGate::try_admit`], so a HalfOpen fallback consumes its
    /// probation permit like any other admission). `None` when every
    /// other node also refuses.
    fn reroute_admit(&self, denied: NodeId) -> Option<NodeId> {
        let mut order: Vec<NodeId> = (0..self.num_nodes())
            .map(NodeId)
            .filter(|&n| n != denied)
            .collect();
        order.sort_by_key(|&n| (self.loads.effective_fixed(n), n.0));
        order.into_iter().find(|&n| self.health.try_admit(n))
    }

    /// Handles the first request of a new connection: picks the
    /// connection-handling node, health-gates the pick, charges the
    /// admitted node one load unit, and registers the connection.
    ///
    /// Gating consumes the breaker's admission
    /// ([`HealthGate::try_admit`]) exactly once per connection. A
    /// refused pick reroutes to the least-loaded node whose breaker
    /// admits; if *every* breaker refuses, the gate fails open and the
    /// original pick stands — a fully quarantined cluster serves
    /// degraded rather than not at all.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is already registered.
    pub fn open_connection(&self, conn: ConnId, first_target: TargetId) -> NodeId {
        let node = if self.policy.pick_uses_mapping() {
            // Optimistic shared pass: in steady state the pick lands on
            // an already-mapped, healthy node and the table does not
            // change. Admission is consumed only when the pass commits;
            // a breaker refusal escalates like a table change would.
            let fast = self.mapping.read(first_target, |m| {
                let (node, effect) = self.policy.pick_node(
                    &self.loads,
                    &self.params,
                    first_target,
                    m.nodes(first_target),
                );
                if !Self::effect_is_noop(m, effect, first_target, node) {
                    return None;
                }
                self.health.try_admit(node).then_some(node)
            });
            match fast {
                Some(node) => node,
                // The table must change (or the pick was refused):
                // re-decide under the exclusive lock (state may have
                // moved between locks; the decision that gets applied is
                // the one made under this lock).
                None => self.mapping.write(first_target, |m| {
                    let (node, effect) = self.policy.pick_node(
                        &self.loads,
                        &self.params,
                        first_target,
                        m.nodes(first_target),
                    );
                    if self.health.try_admit(node) {
                        Self::apply_effect(m, effect, first_target, node);
                        return node;
                    }
                    match self.reroute_admit(node) {
                        // The fallback node will serve (and cache) the
                        // first target: record that belief, not the
                        // refused pick's effect.
                        Some(alt) => {
                            m.add_replica(first_target, alt);
                            alt
                        }
                        // Fail open: no effect recorded for a node that
                        // may never see the request.
                        None => node,
                    }
                }),
            }
        } else {
            let (node, _) = self
                .policy
                .pick_node(&self.loads, &self.params, first_target, &[]);
            if self.health.try_admit(node) {
                node
            } else {
                self.reroute_admit(node).unwrap_or(node)
            }
        };
        self.loads.charge(node, LOAD_UNIT);
        let prev = self.conns.with(conn, |c| {
            c.insert(
                conn,
                ConnState {
                    node,
                    batch_n: 1,
                    frac: Vec::new(),
                },
            )
        });
        assert!(prev.is_none(), "connection {conn} opened twice");
        node
    }

    /// Signals that a new pipelined batch of `n` requests is starting on
    /// `conn`. Clears the fractional remote loads of the previous batch
    /// (the front-end's estimate that the previous batch has been fully
    /// served).
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown or `n == 0`.
    pub fn begin_batch(&self, conn: ConnId, n: usize) {
        assert!(n > 0, "batch must contain at least one request");
        self.conns.with(conn, |c| {
            let state = c.get_mut(&conn).expect("begin_batch: unknown connection");
            for (node, f) in state.frac.drain(..) {
                self.loads.discharge(node, f);
            }
            state.batch_n = n;
        });
    }

    /// Assigns one request of the current batch.
    ///
    /// Returns [`Assignment::Local`] to serve on the connection-handling
    /// node or [`Assignment::Remote`] per the configured
    /// [`ForwardSemantics`].
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn assign_request(&self, conn: ConnId, target: TargetId) -> Assignment {
        let (conn_node, batch_n) = self.conns.with(conn, |c| {
            let state = c.get(&conn).expect("assign_request: unknown connection");
            (state.node, state.batch_n)
        });

        let assignment = if self.policy.assign_uses_mapping() {
            // Optimistic shared pass first (see `open_connection`).
            let fast = self.mapping.read(target, |m| {
                let (assignment, effect) = self.policy.assign(
                    &self.loads,
                    &self.params,
                    conn_node,
                    target,
                    m.nodes(target),
                );
                let (assignment, effect) = self.gate_assignment(assignment, effect);
                let effect_node = assignment.serving_node(conn_node);
                Self::effect_is_noop(m, effect, target, effect_node).then_some(assignment)
            });
            match fast {
                Some(a) => a,
                None => self.mapping.write(target, |m| {
                    let (assignment, effect) = self.policy.assign(
                        &self.loads,
                        &self.params,
                        conn_node,
                        target,
                        m.nodes(target),
                    );
                    let (assignment, effect) = self.gate_assignment(assignment, effect);
                    let effect_node = assignment.serving_node(conn_node);
                    Self::apply_effect(m, effect, target, effect_node);
                    assignment
                }),
            }
        } else {
            let (assignment, _) =
                self.policy
                    .assign(&self.loads, &self.params, conn_node, target, &[]);
            assignment
        };

        if assignment.is_remote() {
            self.conns.with(conn, |c| {
                let state = c.get_mut(&conn).expect("connection vanished");
                self.settle(state, batch_n, assignment);
            });
        }
        assignment
    }

    /// Applies a decision's load/connection-state consequences: the 1/N
    /// fractional charge for a lateral fetch, or the load-unit move and
    /// re-homing for a migration. Shared verbatim by the per-request and
    /// batched paths so their accounting cannot drift apart. The caller
    /// holds `state`'s connection shard.
    fn settle(&self, state: &mut ConnState, batch_n: usize, assignment: Assignment) {
        let Assignment::Remote(remote) = assignment else {
            return;
        };
        match self.semantics {
            ForwardSemantics::LateralFetch => {
                if self.params.batch_load_accounting {
                    // 1/N load on the remote node for the batch.
                    let f = LoadTracker::frac_charge(batch_n);
                    self.loads.charge(remote, f);
                    state.frac.push((remote, f));
                }
            }
            ForwardSemantics::Migrate => {
                // The connection itself moves.
                self.loads.discharge(state.node, LOAD_UNIT);
                self.loads.charge(remote, LOAD_UNIT);
                state.node = remote;
            }
        }
    }

    /// Assigns a whole pipelined batch in one call — the paper's unit of
    /// P-HTTP work, made the dispatcher's unit of locking work.
    ///
    /// Observably equivalent to
    /// [`begin_batch(conn, targets.len())`](Self::begin_batch) followed by
    /// [`assign_request`](Self::assign_request) once per target in order
    /// (property-tested in `tests/batch_equivalence.rs`): same assignments,
    /// same final loads, mappings, and connection state. The difference is
    /// cost, not semantics: the connection shard is visited **once** for
    /// the batch (it would be up to `1 + 2·N` visits sequentially), and
    /// each distinct mapping shard the batch touches is write-locked
    /// **once**, with the batch's decisions for that shard's targets run
    /// under the single acquisition.
    ///
    /// An empty `targets` is the degenerate batch: it clears the previous
    /// batch's fractional charges (like `begin_batch(conn, 1)`) and
    /// returns no assignments. Batches longer than an internal bound
    /// (64 requests) are processed in chunks so one hostile client cannot
    /// pin shards indefinitely; chunking does not change any decision.
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn assign_batch(&self, conn: ConnId, targets: &[TargetId]) -> Vec<Assignment> {
        // A one-request batch has nothing to amortize: delegate to the
        // per-request path, which keeps its optimistic shared-lock pass
        // (observably the same decision either way). This matters because
        // HTTP/1.0 traffic and sparse P-HTTP batches are all size 1.
        if targets.len() == 1 {
            self.begin_batch(conn, 1);
            return vec![self.assign_request(conn, targets[0])];
        }
        let batch_n = targets.len().max(1);
        let mut out = Vec::with_capacity(targets.len());
        let mut cleared = false;
        let mut rest = targets;
        loop {
            let (chunk, tail) = rest.split_at(rest.len().min(MAX_BATCH_CHUNK));
            self.conns.with(conn, |c| {
                let state = c.get_mut(&conn).expect("assign_batch: unknown connection");
                if !cleared {
                    // begin_batch semantics: the previous batch is assumed
                    // fully served once a new batch arrives.
                    for (node, f) in state.frac.drain(..) {
                        self.loads.discharge(node, f);
                    }
                    state.batch_n = batch_n;
                }
                self.decide_chunk(state, batch_n, chunk, &mut out);
            });
            cleared = true;
            rest = tail;
            if rest.is_empty() {
                return out;
            }
        }
    }

    /// Decides one chunk of a batch under the connection shard (held by
    /// the caller) plus one write acquisition per distinct mapping shard.
    fn decide_chunk(
        &self,
        state: &mut ConnState,
        batch_n: usize,
        chunk: &[TargetId],
        out: &mut Vec<Assignment>,
    ) {
        if chunk.is_empty() {
            return;
        }
        if self.policy.assign_uses_mapping() {
            self.mapping.write_set(chunk, |shards| {
                for &target in chunk {
                    let m = shards.table_mut(target);
                    let (assignment, effect) = self.policy.assign(
                        &self.loads,
                        &self.params,
                        state.node,
                        target,
                        m.nodes(target),
                    );
                    let (assignment, effect) = self.gate_assignment(assignment, effect);
                    let effect_node = assignment.serving_node(state.node);
                    Self::apply_effect(m, effect, target, effect_node);
                    self.settle(state, batch_n, assignment);
                    out.push(assignment);
                }
            });
        } else {
            for &target in chunk {
                let (assignment, _) =
                    self.policy
                        .assign(&self.loads, &self.params, state.node, target, &[]);
                self.settle(state, batch_n, assignment);
                out.push(assignment);
            }
        }
    }

    /// Returns the node currently handling `conn` (it can change under
    /// [`ForwardSemantics::Migrate`]).
    pub fn connection_node(&self, conn: ConnId) -> Option<NodeId> {
        self.conns.with(conn, |c| c.get(&conn).map(|s| s.node))
    }

    /// Closes a connection: removes its load unit and any outstanding
    /// fractional remote loads.
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn close_connection(&self, conn: ConnId) {
        let closed = self.try_close_connection(conn);
        assert!(closed, "close_connection: unknown connection");
    }

    /// Closes `conn` if it is registered; returns whether it was. The
    /// removal and the idempotence check happen under one shard lock,
    /// so duplicate closes from racing teardown paths are safe.
    pub fn try_close_connection(&self, conn: ConnId) -> bool {
        let state = self.conns.with(conn, |c| c.remove(&conn));
        match state {
            None => false,
            Some(state) => {
                self.loads.discharge(state.node, LOAD_UNIT);
                for (node, f) in state.frac {
                    self.loads.discharge(node, f);
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    fn ext(nodes: usize) -> ConcurrentDispatcher {
        ConcurrentDispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::LateralFetch,
            nodes,
            LardParams::default(),
        )
    }

    #[test]
    fn shared_reference_lifecycle() {
        let d = ext(2);
        let node = d.open_connection(ConnId(0), t(0));
        d.begin_batch(ConnId(0), 2);
        assert_eq!(d.assign_request(ConnId(0), t(1)), Assignment::Local);
        assert_eq!(d.connection_node(ConnId(0)), Some(node));
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
        assert_eq!(d.active_connections(), 0);
    }

    #[test]
    fn assign_batch_matches_sequential_for_a_simple_batch() {
        let seq = ext(2);
        let bat = ext(2);
        for d in [&seq, &bat] {
            d.open_connection(ConnId(0), t(0));
            d.report_disk_queue(NodeId(0), 50);
            d.report_disk_queue(NodeId(1), 50);
            d.mapping().write(t(9), |m| m.add_replica(t(9), NodeId(1)));
        }
        let targets = [t(9), t(3), t(9)];
        seq.begin_batch(ConnId(0), targets.len());
        let want: Vec<Assignment> = targets
            .iter()
            .map(|&x| seq.assign_request(ConnId(0), x))
            .collect();
        let got = bat.assign_batch(ConnId(0), &targets);
        assert_eq!(got, want);
        assert_eq!(seq.loads(), bat.loads());
        assert_eq!(seq.mapping().num_replicas(), bat.mapping().num_replicas());
    }

    #[test]
    fn empty_batch_clears_previous_fractions() {
        let d = ext(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.mapping().write(t(1), |m| m.add_replica(t(1), other));
        let a = d.assign_batch(ConnId(0), &[t(1)]);
        assert_eq!(a, vec![Assignment::Remote(other)]);
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);
        // The degenerate batch behaves like begin_batch(conn, 1).
        assert!(d.assign_batch(ConnId(0), &[]).is_empty());
        assert!(d.loads()[other.0].abs() < 1e-9);
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
    }

    #[test]
    fn oversized_batch_is_chunked_but_accounting_is_exact() {
        let d = ext(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        // Every target cached on the other node: each of the N requests
        // forwards, charging exactly 1/N — including across chunks.
        let n = MAX_BATCH_CHUNK * 2 + 7;
        let targets: Vec<TargetId> = (0..n as u32).map(|i| t(i + 1)).collect();
        for &x in &targets {
            d.mapping().write(x, |m| m.add_replica(x, other));
        }
        let assignments = d.assign_batch(ConnId(0), &targets);
        assert_eq!(assignments.len(), n);
        assert!(assignments.iter().all(|a| a.is_remote()));
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-4);
        d.close_connection(ConnId(0));
        assert_eq!(d.load_tracker().load_fixed(other), 0);
        assert_eq!(d.load_tracker().load_fixed(conn_node), 0);
    }

    #[test]
    fn oversized_batch_under_migrate_matches_sequential() {
        // Chunk boundaries must not perturb migrate re-homing: the same
        // >MAX_BATCH_CHUNK batch, decided batched vs sequentially, must
        // walk the identical sequence of hops and end at the same home.
        let mk = || {
            let d = ConcurrentDispatcher::new(
                PolicyKind::ExtLard,
                ForwardSemantics::Migrate,
                3,
                LardParams::default(),
            );
            for i in 0..3 {
                d.report_disk_queue(NodeId(i), 50);
            }
            d
        };
        let seq = mk();
        let bat = mk();
        let n = MAX_BATCH_CHUNK * 2 + 9;
        // Targets mapped round-robin across all nodes: the connection is
        // dragged from node to node, including across chunk boundaries.
        let targets: Vec<TargetId> = (0..n as u32).map(|i| t(i + 1)).collect();
        for d in [&seq, &bat] {
            for (i, &x) in targets.iter().enumerate() {
                d.mapping().write(x, |m| m.add_replica(x, NodeId(i % 3)));
            }
            let node = d.open_connection(ConnId(0), t(0));
            assert_eq!(node, NodeId(0));
        }
        seq.begin_batch(ConnId(0), n);
        let want: Vec<Assignment> = targets
            .iter()
            .map(|&x| seq.assign_request(ConnId(0), x))
            .collect();
        let got = bat.assign_batch(ConnId(0), &targets);
        assert_eq!(got, want);
        assert!(want.iter().any(|a| a.is_remote()), "no hop exercised");
        assert_eq!(
            seq.connection_node(ConnId(0)),
            bat.connection_node(ConnId(0))
        );
        for i in 0..3 {
            assert_eq!(
                seq.load_tracker().load_fixed(NodeId(i)),
                bat.load_tracker().load_fixed(NodeId(i)),
                "node {i}"
            );
        }
        for d in [seq, bat] {
            d.close_connection(ConnId(0));
            assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "unknown connection")]
    fn assign_batch_on_unknown_connection_panics() {
        let d = ext(2);
        let _ = d.assign_batch(ConnId(42), &[t(0)]);
    }

    #[test]
    fn snapshot_and_adopt_roundtrip() {
        let d = ext(2);
        d.open_connection(ConnId(0), t(0));
        d.mapping().write(t(7), |m| m.add_replica(t(7), NodeId(1)));
        let snap = d.snapshot();
        assert_eq!(snap.loads.iter().sum::<i64>(), LOAD_UNIT);
        assert!(snap.mapping.iter().any(|(x, _)| *x == t(7)));

        // A peer adopting the snapshot's share materializes it verbatim.
        let peer = ext(2);
        let outcome = MergeOutcome {
            applied: true,
            upserts: snap.mapping.clone(),
            removals: vec![],
        };
        peer.adopt_merge(&outcome);
        assert!(peer.mapping().read(t(7), |m| m.is_mapped(t(7), NodeId(1))));
        peer.adopt_merge(&MergeOutcome {
            applied: true,
            upserts: vec![],
            removals: vec![t(7)],
        });
        assert!(!peer.mapping().read(t(7), |m| m.is_known(t(7))));

        // Remote bias is visible to reads but not exported back out.
        peer.set_remote_loads(&snap.loads);
        assert!(peer.loads().iter().sum::<f64>() > 0.9);
        assert!(peer.snapshot().loads.iter().all(|&l| l == 0));
        d.close_connection(ConnId(0));
    }

    #[test]
    fn open_connection_reroutes_around_an_open_breaker() {
        let d = ext(2);
        // Deterministic first pick: all-idle LARD breaks ties toward
        // node 0. Quarantine it; the connection must land elsewhere and
        // the mapping must record the *actual* home.
        d.health().force_open(NodeId(0));
        let node = d.open_connection(ConnId(0), t(5));
        assert_eq!(node, NodeId(1));
        assert!(d.mapping().read(t(5), |m| m.is_mapped(t(5), NodeId(1))));
        assert!(!d.mapping().read(t(5), |m| m.is_mapped(t(5), NodeId(0))));
        d.close_connection(ConnId(0));
    }

    #[test]
    fn open_connection_fails_open_when_all_breakers_refuse() {
        let d = ext(2);
        d.health().force_open(NodeId(0));
        d.health().force_open(NodeId(1));
        let node = d.open_connection(ConnId(0), t(5));
        assert_eq!(node, NodeId(0), "fail-open keeps the policy's pick");
        // And no belief is recorded for a node that may never serve it.
        assert!(!d.mapping().read(t(5), |m| m.is_known(t(5))));
        d.close_connection(ConnId(0));
    }

    #[test]
    fn remote_assignment_to_open_node_degrades_to_local_without_effect() {
        let d = ext(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.mapping().write(t(1), |m| m.add_replica(t(1), other));
        let before = d.mapping().num_replicas();
        d.health().force_open(other);
        d.begin_batch(ConnId(0), 1);
        assert_eq!(d.assign_request(ConnId(0), t(1)), Assignment::Local);
        assert_eq!(
            d.mapping().num_replicas(),
            before,
            "gated decision must not leave a mapping effect behind"
        );
        // Batched path takes the same gate.
        assert_eq!(
            d.assign_batch(ConnId(0), &[t(1), t(1)]),
            vec![Assignment::Local, Assignment::Local]
        );
        d.close_connection(ConnId(0));
    }

    #[test]
    fn evict_node_trips_its_breaker() {
        let d = ext(2);
        d.evict_node(NodeId(0));
        assert_eq!(
            d.health().state(NodeId(0)),
            crate::health::HealthState::Open
        );
        let node = d.open_connection(ConnId(0), t(3));
        assert_eq!(node, NodeId(1));
        d.close_connection(ConnId(0));
    }

    #[test]
    fn warm_up_installs_final_cached_beliefs_and_resets_breaker() {
        let d = ext(2);
        let n = NodeId(1);
        d.evict_node(n);
        let events = vec![
            CacheEvent::Admit(t(1)),
            CacheEvent::Admit(t(2)),
            CacheEvent::Evict(t(1)),
            CacheEvent::Admit(t(3)),
        ];
        let installed = d.warm_up(n, &events);
        assert_eq!(installed, 2, "t2 and t3 survive the journal fold");
        assert!(d.mapping().read(t(2), |m| m.is_mapped(t(2), n)));
        assert!(d.mapping().read(t(3), |m| m.is_mapped(t(3), n)));
        assert!(!d.mapping().read(t(1), |m| m.is_mapped(t(1), n)));
        assert_eq!(d.health().state(n), crate::health::HealthState::Closed);
        // Mirror agrees with beliefs: warm-up introduces no divergence.
        assert_eq!(d.mapping_divergence(), 0);
        // Absolute semantics: a second warm-up replaces, never unions.
        let installed = d.warm_up(n, &[CacheEvent::Admit(t(4))]);
        assert_eq!(installed, 1);
        assert!(!d.mapping().read(t(2), |m| m.is_mapped(t(2), n)));
        assert_eq!(d.mapping_divergence(), 0);
    }

    #[test]
    fn try_close_is_idempotent() {
        let d = ext(2);
        d.open_connection(ConnId(7), t(0));
        assert!(d.try_close_connection(ConnId(7)));
        assert!(!d.try_close_connection(ConnId(7)));
        assert_eq!(d.active_connections(), 0);
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let d = ext(2);
        d.open_connection(ConnId(0), t(0));
        d.open_connection(ConnId(0), t(1));
    }

    #[test]
    #[should_panic(expected = "unknown connection")]
    fn close_unknown_panics() {
        let d = ext(2);
        d.close_connection(ConnId(3));
    }

    #[test]
    fn parallel_opens_on_distinct_targets_do_not_interfere() {
        use std::sync::Arc;
        let d = Arc::new(ext(4));
        let handles: Vec<_> = (0..4u64)
            .map(|k| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let conn = ConnId(k * 1_000_000 + i);
                        d.open_connection(conn, t((k * 500 + i) as u32));
                        d.close_connection(conn);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.active_connections(), 0);
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
    }
}
