//! The single-threaded dispatcher façade.
//!
//! This is the component the paper implements "in a dispatcher module at
//! the front-end". It is now a thin composition of the three layered
//! parts — [`Policy`](crate::policy::Policy) decisions,
//! [`LoadTracker`](crate::load::LoadTracker) accounting, and the
//! [`ShardedMappingTable`] — by
//! wrapping a [`ConcurrentDispatcher`] behind `&mut self` methods. The
//! trace-driven simulator (`phttp-sim`) and the figure binaries use this
//! façade; the live prototype (`phttp-proto`) uses
//! [`ConcurrentDispatcher`] directly so its connection-handler threads
//! never serialize on a global lock. Both façades run byte-identical
//! decision logic.
//!
//! ## Decision procedure
//!
//! * **New connection** (first request): WRR picks the least-loaded node;
//!   LARD and extended LARD pick the node minimizing the aggregate cost of
//!   [`crate::cost`], then update the mapping table.
//! * **Subsequent request on a persistent connection**:
//!   * WRR and basic LARD always serve on the connection-handling node —
//!     their mechanisms distribute at TCP-connection granularity.
//!   * Extended LARD applies the paper's §4.2 rules: serve locally if the
//!     target is mapped to the connection node *or* the node's disk
//!     utilization is low (caching the target in the latter case); otherwise
//!     evaluate the cost metrics over the connection node plus the nodes
//!     that cache the target, and forward/migrate to the argmin.
//!
//! ## Load accounting
//!
//! One load unit per active connection, charged to the connection-handling
//! node. Under back-end forwarding, a remote node serving a request out of a
//! pipelined batch of `N` requests is charged `1/N` load for the duration of
//! the batch — the front-end "assumes that all previous requests have
//! finished once a new batch of requests arrives on the same connection", so
//! starting a new batch clears the fractional charges of the previous one.
//! Under multiple-handoff semantics a remote assignment *migrates* the whole
//! load unit instead.

use phttp_trace::TargetId;

use crate::concurrent::{ConcurrentDispatcher, DispatcherConfig};
use crate::cost::LardParams;
use crate::shard::ShardedMappingTable;
use crate::types::{Assignment, ConnId, NodeId};

pub use crate::policy::{ForwardSemantics, PolicyKind};

/// The front-end dispatcher, single-threaded flavour. See the module
/// docs for semantics.
pub struct Dispatcher {
    inner: ConcurrentDispatcher,
}

impl Dispatcher {
    /// Creates a dispatcher for `num_nodes` back-ends.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or the parameters fail validation.
    pub fn new(
        policy: PolicyKind,
        semantics: ForwardSemantics,
        num_nodes: usize,
        params: LardParams,
    ) -> Self {
        Self::from_config(DispatcherConfig::new(policy, semantics, num_nodes, params))
    }

    /// Creates a dispatcher from a full configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or the parameters fail validation.
    pub fn from_config(config: DispatcherConfig) -> Self {
        Dispatcher {
            inner: ConcurrentDispatcher::from_config(config),
        }
    }

    /// Number of back-end nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    /// Current per-node load estimates (connections + fractional fetches).
    pub fn loads(&self) -> Vec<f64> {
        self.inner.loads()
    }

    /// The policy this dispatcher runs.
    pub fn policy(&self) -> PolicyKind {
        self.inner.policy()
    }

    /// Read access to the mapping table (for metrics/diagnostics).
    pub fn mapping(&self) -> &ShardedMappingTable {
        self.inner.mapping()
    }

    /// Number of connections currently tracked.
    pub fn active_connections(&self) -> usize {
        self.inner.active_connections()
    }

    /// Records a back-end's disk queue depth (conveyed over the control
    /// session in the prototype; read directly in the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn report_disk_queue(&mut self, node: NodeId, depth: usize) {
        self.inner.report_disk_queue(node, depth);
    }

    /// Applies one batched cache-feedback report from `node` (the
    /// control-session message that keeps the mapping belief coherent
    /// with the node's real cache). See
    /// [`ConcurrentDispatcher::apply_cache_feedback`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn apply_cache_feedback(&mut self, node: NodeId, events: &[crate::feedback::CacheEvent]) {
        self.inner.apply_cache_feedback(node, events);
    }

    /// Believed `(target, node)` pairs the feedback mirror says are not
    /// actually cached. See [`ConcurrentDispatcher::mapping_divergence`].
    pub fn mapping_divergence(&self) -> u64 {
        self.inner.mapping_divergence()
    }

    /// Coherence counters plus divergence/believed-pair gauges.
    pub fn coherence(&self) -> crate::feedback::CoherenceSnapshot {
        self.inner.coherence()
    }

    /// Coherence counters only (no O(mapping size) gauge walk). See
    /// [`ConcurrentDispatcher::coherence_counters`].
    pub fn coherence_counters(&self) -> crate::feedback::CoherenceSnapshot {
        self.inner.coherence_counters()
    }

    /// Drops every believed mapping and mirrored cache content for
    /// `node` (decommissioning). See [`ConcurrentDispatcher::evict_node`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn evict_node(&mut self, node: NodeId) {
        self.inner.evict_node(node);
    }

    /// Warms up beliefs for a (re)joining node from its admission-report
    /// journal and resets its breaker. See
    /// [`ConcurrentDispatcher::warm_up`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn warm_up(&mut self, node: NodeId, events: &[crate::feedback::CacheEvent]) -> usize {
        self.inner.warm_up(node, events)
    }

    /// Sets a node's relative capacity weight. See
    /// [`ConcurrentDispatcher::set_node_weight`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `weight == 0`.
    pub fn set_node_weight(&mut self, node: NodeId, weight: u32) {
        self.inner.set_node_weight(node, weight);
    }

    /// The per-node circuit breakers. See
    /// [`ConcurrentDispatcher::health`].
    pub fn health(&self) -> &crate::health::HealthGate {
        self.inner.health()
    }

    /// Exports this dispatcher's tier-relevant state (locally charged
    /// loads + believed mapping) for gossip. See
    /// [`ConcurrentDispatcher::snapshot`].
    pub fn snapshot(&self) -> crate::tier::DispatcherSnapshot {
        self.inner.snapshot()
    }

    /// Materializes a peer's merged share into the local tables. See
    /// [`ConcurrentDispatcher::adopt_merge`].
    pub fn adopt_merge(&mut self, outcome: &crate::tier::MergeOutcome) {
        self.inner.adopt_merge(outcome);
    }

    /// Overwrites every node's remote-load bias with the merged
    /// tier-view figure. See [`ConcurrentDispatcher::set_remote_loads`].
    ///
    /// # Panics
    ///
    /// Panics if `remote.len() != num_nodes()`.
    pub fn set_remote_loads(&mut self, remote: &[i64]) {
        self.inner.set_remote_loads(remote);
    }

    /// Handles the first request of a new connection: picks the
    /// connection-handling node, charges it one load unit, and registers the
    /// connection.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is already registered.
    pub fn open_connection(&mut self, conn: ConnId, first_target: TargetId) -> NodeId {
        self.inner.open_connection(conn, first_target)
    }

    /// Signals that a new pipelined batch of `n` requests is starting on
    /// `conn`. Clears the fractional remote loads of the previous batch (the
    /// front-end's estimate that the previous batch has been fully served).
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown or `n == 0`.
    pub fn begin_batch(&mut self, conn: ConnId, n: usize) {
        self.inner.begin_batch(conn, n);
    }

    /// Assigns one request of the current batch.
    ///
    /// Returns [`Assignment::Local`] to serve on the connection-handling node
    /// or [`Assignment::Remote`] per the configured [`ForwardSemantics`].
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn assign_request(&mut self, conn: ConnId, target: TargetId) -> Assignment {
        self.inner.assign_request(conn, target)
    }

    /// Assigns a whole pipelined batch in one call: equivalent to
    /// [`begin_batch`](Self::begin_batch) with `targets.len()` followed by
    /// [`assign_request`](Self::assign_request) per target in order, but
    /// with the concurrent core's amortized shard locking (one
    /// connection-shard visit, one write acquisition per distinct mapping
    /// shard). See [`ConcurrentDispatcher::assign_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn assign_batch(&mut self, conn: ConnId, targets: &[TargetId]) -> Vec<Assignment> {
        self.inner.assign_batch(conn, targets)
    }

    /// Returns the node currently handling `conn` (it can change under
    /// [`ForwardSemantics::Migrate`]).
    pub fn connection_node(&self, conn: ConnId) -> Option<NodeId> {
        self.inner.connection_node(conn)
    }

    /// Closes a connection: removes its load unit and any outstanding
    /// fractional remote loads.
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn close_connection(&mut self, conn: ConnId) {
        self.inner.close_connection(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    fn ext_dispatcher(nodes: usize) -> Dispatcher {
        Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::LateralFetch,
            nodes,
            LardParams::default(),
        )
    }

    #[test]
    fn wrr_spreads_connections_evenly() {
        let mut d = Dispatcher::new(
            PolicyKind::Wrr,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let n = d.open_connection(ConnId(i), t(i as u32));
            counts[n.0] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn wrr_prefers_less_loaded_after_closures() {
        let mut d = Dispatcher::new(
            PolicyKind::Wrr,
            ForwardSemantics::LateralFetch,
            2,
            LardParams::default(),
        );
        let n0 = d.open_connection(ConnId(0), t(0));
        let _n1 = d.open_connection(ConnId(1), t(1));
        d.close_connection(ConnId(0));
        // Node n0 is now empty; the next connection must go there.
        let n2 = d.open_connection(ConnId(2), t(2));
        assert_eq!(n2, n0);
    }

    #[test]
    fn lard_is_sticky_for_a_mapped_target() {
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let first = d.open_connection(ConnId(0), t(7));
        for i in 1..20 {
            let n = d.open_connection(ConnId(i), t(7));
            assert_eq!(n, first, "lightly loaded mapped node must keep its target");
        }
    }

    #[test]
    fn lard_moves_target_off_overloaded_node() {
        // With the defaults (l_idle = 25, miss_cost = 40), a mapped node at
        // load L wins over an idle unmapped node while L - 25 < 40, i.e.
        // through the 65th connection; the 66th (seeing load 65, a cost tie
        // broken toward the lower-loaded node) must move the target —
        // exactly ASPLOS LARD's T_high = 65 threshold.
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            2,
            LardParams::default(),
        );
        let first = d.open_connection(ConnId(0), t(1));
        for i in 1..65 {
            assert_eq!(d.open_connection(ConnId(i), t(1)), first);
        }
        assert!((d.loads()[first.0] - 65.0).abs() < 1e-9);
        let n = d.open_connection(ConnId(65), t(1));
        assert_ne!(n, first, "node at T_high must shed the target");
        // And the mapping moved with it.
        assert!(d.mapping().is_mapped(t(1), n));
        assert!(!d.mapping().is_mapped(t(1), first));
    }

    #[test]
    fn lard_subsequent_requests_stay_local() {
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let node = d.open_connection(ConnId(0), t(0));
        d.begin_batch(ConnId(0), 3);
        for target in [t(1), t(2), t(3)] {
            assert_eq!(d.assign_request(ConnId(0), target), Assignment::Local);
        }
        assert_eq!(d.connection_node(ConnId(0)), Some(node));
    }

    #[test]
    fn ext_lard_serves_locally_when_disk_idle_and_caches() {
        let mut d = ext_dispatcher(2);
        let node = d.open_connection(ConnId(0), t(0));
        d.begin_batch(ConnId(0), 1);
        // Disk queue is 0 (< threshold): local service plus replica mapping.
        assert_eq!(d.assign_request(ConnId(0), t(42)), Assignment::Local);
        assert!(d.mapping().is_mapped(t(42), node));
    }

    #[test]
    fn ext_lard_forwards_to_caching_node_when_disk_busy() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        // The other node caches target 9, and this node's disk is busy.
        d.report_disk_queue(conn_node, 50);
        d.add_replica_for_tests(t(9), other);
        d.begin_batch(ConnId(0), 1);
        let a = d.assign_request(ConnId(0), t(9));
        assert_eq!(a, Assignment::Remote(other));
        // Remote fetch charges 1/N = 1 load unit to the remote node.
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ext_lard_first_fetch_creates_mapping_even_with_busy_disk() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        d.report_disk_queue(conn_node, 50);
        d.begin_batch(ConnId(0), 1);
        // No node caches target 5 yet: serve locally from disk. This first
        // fetch records the mapping (it is not replication), so the target
        // converges onto a home node.
        assert_eq!(d.assign_request(ConnId(0), t(5)), Assignment::Local);
        assert!(d.mapping().is_mapped(t(5), conn_node));
    }

    #[test]
    fn ext_lard_busy_disk_no_replication_when_mapped_elsewhere() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        // Target 9 is cached on the other node, but that node is overloaded:
        // the cost metrics keep the request local — and the anti-thrashing
        // heuristic must NOT add a local replica mapping.
        d.add_replica_for_tests(t(9), other);
        d.set_load_for_tests(other, 200.0); // past l_overload: infinite cost
        d.begin_batch(ConnId(0), 1);
        assert_eq!(d.assign_request(ConnId(0), t(9)), Assignment::Local);
        assert!(!d.mapping().is_mapped(t(9), conn_node));
    }

    #[test]
    fn batch_fractions_are_cleared_on_next_batch() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.add_replica_for_tests(t(1), other);
        d.add_replica_for_tests(t(2), other);

        d.begin_batch(ConnId(0), 2);
        assert!(d.assign_request(ConnId(0), t(1)).is_remote());
        assert!(d.assign_request(ConnId(0), t(2)).is_remote());
        // Two requests at 1/2 load each.
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);

        // The next batch clears the previous fractional charges.
        d.begin_batch(ConnId(0), 1);
        assert!(d.loads()[other.0].abs() < 1e-9);
    }

    #[test]
    fn close_clears_connection_and_fractions() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.add_replica_for_tests(t(1), other);
        d.begin_batch(ConnId(0), 1);
        let _ = d.assign_request(ConnId(0), t(1));
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
        assert_eq!(d.active_connections(), 0);
    }

    #[test]
    fn migrate_semantics_moves_the_load_unit() {
        let mut d = Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::Migrate,
            2,
            LardParams::default(),
        );
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.add_replica_for_tests(t(1), other);
        d.begin_batch(ConnId(0), 1);
        let a = d.assign_request(ConnId(0), t(1));
        assert_eq!(a, Assignment::Remote(other));
        // The whole connection moved.
        assert_eq!(d.connection_node(ConnId(0)), Some(other));
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);
        assert!(d.loads()[conn_node.0].abs() < 1e-9);
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let mut d = ext_dispatcher(2);
        d.open_connection(ConnId(0), t(0));
        d.open_connection(ConnId(0), t(1));
    }

    #[test]
    #[should_panic(expected = "unknown connection")]
    fn assign_on_unknown_connection_panics() {
        let mut d = ext_dispatcher(2);
        let _ = d.assign_request(ConnId(99), t(0));
    }

    impl Dispatcher {
        /// Test-only mapping mutation (replaces the old direct access to
        /// the monolithic dispatcher's private table).
        fn add_replica_for_tests(&mut self, target: TargetId, node: NodeId) {
            self.inner
                .mapping()
                .write(target, |m| m.add_replica(target, node));
        }

        /// Test-only override of a node's load estimate.
        fn set_load_for_tests(&mut self, node: NodeId, load: f64) {
            self.inner.load_tracker().set_load_for_tests(node, load);
        }
    }
}
