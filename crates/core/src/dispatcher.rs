//! The front-end dispatcher: policy decisions plus load bookkeeping.
//!
//! This is the component the paper implements "in a dispatcher module at the
//! front-end" — the same logic drives the trace-driven simulator
//! (`phttp-sim`) and the live prototype (`phttp-proto`).
//!
//! ## Decision procedure
//!
//! * **New connection** (first request): WRR picks the least-loaded node;
//!   LARD and extended LARD pick the node minimizing the aggregate cost of
//!   [`crate::cost`], then update the mapping table.
//! * **Subsequent request on a persistent connection**:
//!   * WRR and basic LARD always serve on the connection-handling node —
//!     their mechanisms distribute at TCP-connection granularity.
//!   * Extended LARD applies the paper's §4.2 rules: serve locally if the
//!     target is mapped to the connection node *or* the node's disk
//!     utilization is low (caching the target in the latter case); otherwise
//!     evaluate the cost metrics over the connection node plus the nodes
//!     that cache the target, and forward/migrate to the argmin.
//!
//! ## Load accounting
//!
//! One load unit per active connection, charged to the connection-handling
//! node. Under back-end forwarding, a remote node serving a request out of a
//! pipelined batch of `N` requests is charged `1/N` load for the duration of
//! the batch — the front-end "assumes that all previous requests have
//! finished once a new batch of requests arrives on the same connection", so
//! starting a new batch clears the fractional charges of the previous one.
//! Under multiple-handoff semantics a remote assignment *migrates* the whole
//! load unit instead.

use std::collections::HashMap;

use phttp_trace::TargetId;

use crate::cost::{aggregate_cost, LardParams};
use crate::mapping::MappingTable;
use crate::types::{Assignment, ConnId, NodeId};

/// Which distribution policy the dispatcher runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Weighted round-robin: pure load-based, content-blind (the baseline
    /// used by the commercial front-ends the paper cites).
    Wrr,
    /// Basic LARD (ASPLOS '98), distributing at connection granularity.
    Lard,
    /// Extended LARD (this paper), distributing at request granularity.
    ExtLard,
}

impl PolicyKind {
    /// Short name used in figure legends, matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Wrr => "WRR",
            PolicyKind::Lard => "LARD",
            PolicyKind::ExtLard => "extLARD",
        }
    }
}

/// What a [`Assignment::Remote`] decision means mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardSemantics {
    /// Back-end forwarding: the connection stays put; the connection node
    /// fetches the response laterally. Remote nodes get 1/N batch load.
    LateralFetch,
    /// Multiple handoff: the connection (and its load unit) migrates to the
    /// remote node, which becomes the new connection-handling node.
    Migrate,
}

/// Per-connection dispatcher state.
#[derive(Debug, Clone)]
struct ConnState {
    node: NodeId,
    /// Size of the current pipelined batch (the paper's `N`).
    batch_n: usize,
    /// Fractional loads charged to remote nodes for the current batch.
    frac: Vec<(NodeId, f64)>,
}

/// The front-end dispatcher. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    policy: PolicyKind,
    semantics: ForwardSemantics,
    params: LardParams,
    mapping: MappingTable,
    loads: Vec<f64>,
    disk_q: Vec<usize>,
    conns: HashMap<ConnId, ConnState>,
    rr_cursor: usize,
}

impl Dispatcher {
    /// Creates a dispatcher for `num_nodes` back-ends.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or the parameters fail validation.
    pub fn new(
        policy: PolicyKind,
        semantics: ForwardSemantics,
        num_nodes: usize,
        params: LardParams,
    ) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one back-end");
        if let Err(e) = params.validate() {
            panic!("invalid LARD parameters: {e}");
        }
        Dispatcher {
            policy,
            semantics,
            params,
            mapping: MappingTable::new(),
            loads: vec![0.0; num_nodes],
            disk_q: vec![0; num_nodes],
            conns: HashMap::new(),
            rr_cursor: 0,
        }
    }

    /// Number of back-end nodes.
    pub fn num_nodes(&self) -> usize {
        self.loads.len()
    }

    /// Current per-node load estimates (connections + fractional fetches).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The policy this dispatcher runs.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Read access to the mapping table (for metrics/diagnostics).
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    /// Number of connections currently tracked.
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// Records a back-end's disk queue depth (conveyed over the control
    /// session in the prototype; read directly in the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn report_disk_queue(&mut self, node: NodeId, depth: usize) {
        self.disk_q[node.0] = depth;
    }

    /// Handles the first request of a new connection: picks the
    /// connection-handling node, charges it one load unit, and registers the
    /// connection.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is already registered.
    pub fn open_connection(&mut self, conn: ConnId, first_target: TargetId) -> NodeId {
        let node = match self.policy {
            PolicyKind::Wrr => self.pick_least_loaded(),
            PolicyKind::Lard | PolicyKind::ExtLard => self.lard_pick(first_target),
        };
        self.loads[node.0] += 1.0;
        let prev = self.conns.insert(
            conn,
            ConnState {
                node,
                batch_n: 1,
                frac: Vec::new(),
            },
        );
        assert!(prev.is_none(), "connection {conn} opened twice");
        node
    }

    /// Signals that a new pipelined batch of `n` requests is starting on
    /// `conn`. Clears the fractional remote loads of the previous batch (the
    /// front-end's estimate that the previous batch has been fully served).
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown or `n == 0`.
    pub fn begin_batch(&mut self, conn: ConnId, n: usize) {
        assert!(n > 0, "batch must contain at least one request");
        let state = self
            .conns
            .get_mut(&conn)
            .expect("begin_batch: unknown connection");
        for (node, f) in state.frac.drain(..) {
            self.loads[node.0] -= f;
        }
        state.batch_n = n;
    }

    /// Assigns one request of the current batch.
    ///
    /// Returns [`Assignment::Local`] to serve on the connection-handling node
    /// or [`Assignment::Remote`] per the configured [`ForwardSemantics`].
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn assign_request(&mut self, conn: ConnId, target: TargetId) -> Assignment {
        let state = self
            .conns
            .get(&conn)
            .expect("assign_request: unknown connection");
        let conn_node = state.node;
        let batch_n = state.batch_n;

        match self.policy {
            // Connection-granularity policies never move a request.
            PolicyKind::Wrr | PolicyKind::Lard => Assignment::Local,
            PolicyKind::ExtLard => {
                let decision = self.ext_lard_decide(conn_node, target);
                match decision {
                    Assignment::Local => Assignment::Local,
                    Assignment::Remote(remote) => {
                        match self.semantics {
                            ForwardSemantics::LateralFetch => {
                                if self.params.batch_load_accounting {
                                    // 1/N load on the remote node for the batch.
                                    let f = 1.0 / batch_n as f64;
                                    self.loads[remote.0] += f;
                                    self.conns
                                        .get_mut(&conn)
                                        .expect("connection vanished")
                                        .frac
                                        .push((remote, f));
                                }
                            }
                            ForwardSemantics::Migrate => {
                                // The connection itself moves.
                                self.loads[conn_node.0] -= 1.0;
                                self.loads[remote.0] += 1.0;
                                self.conns.get_mut(&conn).expect("connection vanished").node =
                                    remote;
                            }
                        }
                        Assignment::Remote(remote)
                    }
                }
            }
        }
    }

    /// Returns the node currently handling `conn` (it can change under
    /// [`ForwardSemantics::Migrate`]).
    pub fn connection_node(&self, conn: ConnId) -> Option<NodeId> {
        self.conns.get(&conn).map(|s| s.node)
    }

    /// Closes a connection: removes its load unit and any outstanding
    /// fractional remote loads.
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown.
    pub fn close_connection(&mut self, conn: ConnId) {
        let state = self
            .conns
            .remove(&conn)
            .expect("close_connection: unknown connection");
        self.loads[state.node.0] -= 1.0;
        for (node, f) in state.frac {
            self.loads[node.0] -= f;
        }
    }

    /// WRR pick: least-loaded node, breaking ties round-robin so equal-load
    /// nodes share work (this is the "weighted" in weighted round-robin:
    /// weights are the inverse of current load).
    fn pick_least_loaded(&mut self) -> NodeId {
        let n = self.loads.len();
        let mut best = NodeId(self.rr_cursor % n);
        for i in 0..n {
            let cand = NodeId((self.rr_cursor + i) % n);
            if self.loads[cand.0] < self.loads[best.0] {
                best = cand;
            }
        }
        self.rr_cursor = (best.0 + 1) % n;
        best
    }

    /// Basic-LARD pick over all nodes; updates the mapping table.
    fn lard_pick(&mut self, target: TargetId) -> NodeId {
        let mut best = NodeId(0);
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for i in 0..self.loads.len() {
            let node = NodeId(i);
            let mapped = self.mapping.is_mapped(target, node);
            let cost = aggregate_cost(self.loads[i], mapped, &self.params);
            // Tie-break on load, then on index, for determinism.
            let key = (cost, self.loads[i]);
            if key < best_key {
                best_key = key;
                best = node;
            }
        }
        if !self.mapping.is_mapped(target, best) {
            match self.policy {
                // Basic LARD partitions: a move re-homes the target.
                PolicyKind::Lard => self.mapping.assign_exclusive(target, best),
                // Extended LARD tolerates replication (its caching heuristic
                // prunes it); a first-request assignment still re-homes, as
                // in basic LARD, keeping the two equivalent on HTTP/1.0.
                PolicyKind::ExtLard => self.mapping.assign_exclusive(target, best),
                PolicyKind::Wrr => unreachable!("WRR does not use lard_pick"),
            }
        }
        best
    }

    /// Extended-LARD decision for a subsequent request (paper §4.2).
    fn ext_lard_decide(&mut self, conn_node: NodeId, target: TargetId) -> Assignment {
        // Rule 1: cached at the connection node -> serve locally.
        if self.mapping.is_mapped(target, conn_node) {
            return Assignment::Local;
        }
        // Rule 1b: low disk utilization -> read from local disk, avoiding
        // forwarding overhead, and cache it (add a replica mapping).
        if self.disk_q[conn_node.0] < self.params.disk_queue_low {
            self.mapping.add_replica(target, conn_node);
            return Assignment::Local;
        }
        // First-ever fetch of this target: no node caches it, so the
        // connection node reads it from disk. "Mappings ... are updated each
        // time a target is fetched from a backend node" — recording the
        // first mapping is not replication, so the anti-thrashing heuristic
        // does not apply. Without this, targets that only ever appear as
        // subsequent requests (embedded objects) would never converge onto a
        // home node.
        if !self.mapping.is_known(target) {
            self.mapping.add_replica(target, conn_node);
            return Assignment::Local;
        }
        // Rule 2: evaluate cost metrics over the connection node and the
        // nodes currently caching the target (or, under the ablation knob,
        // every node).
        let mut best = conn_node;
        let mut best_key = (
            aggregate_cost(
                self.loads[conn_node.0],
                false, // not mapped to conn node (rule 1 would have fired)
                &self.params,
            ),
            self.loads[conn_node.0],
        );
        let candidates: Vec<NodeId> = if self.params.restrict_candidates {
            self.mapping.nodes(target).to_vec()
        } else {
            (0..self.loads.len()).map(NodeId).collect()
        };
        for cand in candidates {
            if cand == conn_node {
                continue;
            }
            let mapped = self.mapping.is_mapped(target, cand);
            let cost = aggregate_cost(self.loads[cand.0], mapped, &self.params);
            let key = (cost, self.loads[cand.0]);
            if key < best_key {
                best_key = key;
                best = cand;
            }
        }
        if best == conn_node {
            // Serving locally from disk under high disk utilization: the
            // anti-thrashing heuristic says do NOT cache (no mapping added).
            Assignment::Local
        } else {
            // The serving node will end up caching the target (it reads it
            // from its disk if it no longer has it); record that.
            self.mapping.add_replica(target, best);
            Assignment::Remote(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    fn ext_dispatcher(nodes: usize) -> Dispatcher {
        Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::LateralFetch,
            nodes,
            LardParams::default(),
        )
    }

    #[test]
    fn wrr_spreads_connections_evenly() {
        let mut d = Dispatcher::new(
            PolicyKind::Wrr,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let n = d.open_connection(ConnId(i), t(i as u32));
            counts[n.0] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn wrr_prefers_less_loaded_after_closures() {
        let mut d = Dispatcher::new(
            PolicyKind::Wrr,
            ForwardSemantics::LateralFetch,
            2,
            LardParams::default(),
        );
        let n0 = d.open_connection(ConnId(0), t(0));
        let _n1 = d.open_connection(ConnId(1), t(1));
        d.close_connection(ConnId(0));
        // Node n0 is now empty; the next connection must go there.
        let n2 = d.open_connection(ConnId(2), t(2));
        assert_eq!(n2, n0);
    }

    #[test]
    fn lard_is_sticky_for_a_mapped_target() {
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let first = d.open_connection(ConnId(0), t(7));
        for i in 1..20 {
            let n = d.open_connection(ConnId(i), t(7));
            assert_eq!(n, first, "lightly loaded mapped node must keep its target");
        }
    }

    #[test]
    fn lard_moves_target_off_overloaded_node() {
        // With the defaults (l_idle = 25, miss_cost = 40), a mapped node at
        // load L wins over an idle unmapped node while L - 25 < 40, i.e.
        // through the 65th connection; the 66th (seeing load 65, a cost tie
        // broken toward the lower-loaded node) must move the target —
        // exactly ASPLOS LARD's T_high = 65 threshold.
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            2,
            LardParams::default(),
        );
        let first = d.open_connection(ConnId(0), t(1));
        for i in 1..65 {
            assert_eq!(d.open_connection(ConnId(i), t(1)), first);
        }
        assert!((d.loads()[first.0] - 65.0).abs() < 1e-9);
        let n = d.open_connection(ConnId(65), t(1));
        assert_ne!(n, first, "node at T_high must shed the target");
        // And the mapping moved with it.
        assert!(d.mapping().is_mapped(t(1), n));
        assert!(!d.mapping().is_mapped(t(1), first));
    }

    #[test]
    fn lard_subsequent_requests_stay_local() {
        let mut d = Dispatcher::new(
            PolicyKind::Lard,
            ForwardSemantics::LateralFetch,
            4,
            LardParams::default(),
        );
        let node = d.open_connection(ConnId(0), t(0));
        d.begin_batch(ConnId(0), 3);
        for target in [t(1), t(2), t(3)] {
            assert_eq!(d.assign_request(ConnId(0), target), Assignment::Local);
        }
        assert_eq!(d.connection_node(ConnId(0)), Some(node));
    }

    #[test]
    fn ext_lard_serves_locally_when_disk_idle_and_caches() {
        let mut d = ext_dispatcher(2);
        let node = d.open_connection(ConnId(0), t(0));
        d.begin_batch(ConnId(0), 1);
        // Disk queue is 0 (< threshold): local service plus replica mapping.
        assert_eq!(d.assign_request(ConnId(0), t(42)), Assignment::Local);
        assert!(d.mapping().is_mapped(t(42), node));
    }

    #[test]
    fn ext_lard_forwards_to_caching_node_when_disk_busy() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        // The other node caches target 9.
        let mut d2 = d.clone();
        d2.report_disk_queue(conn_node, 50); // busy disk
        d2.mapping_mut_for_tests().add_replica(t(9), other);
        d2.begin_batch(ConnId(0), 1);
        let a = d2.assign_request(ConnId(0), t(9));
        assert_eq!(a, Assignment::Remote(other));
        // Remote fetch charges 1/N = 1 load unit to the remote node.
        assert!((d2.loads()[other.0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ext_lard_first_fetch_creates_mapping_even_with_busy_disk() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        d.report_disk_queue(conn_node, 50);
        d.begin_batch(ConnId(0), 1);
        // No node caches target 5 yet: serve locally from disk. This first
        // fetch records the mapping (it is not replication), so the target
        // converges onto a home node.
        assert_eq!(d.assign_request(ConnId(0), t(5)), Assignment::Local);
        assert!(d.mapping().is_mapped(t(5), conn_node));
    }

    #[test]
    fn ext_lard_busy_disk_no_replication_when_mapped_elsewhere() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        // Target 9 is cached on the other node, but that node is overloaded:
        // the cost metrics keep the request local — and the anti-thrashing
        // heuristic must NOT add a local replica mapping.
        d.mapping_mut_for_tests().add_replica(t(9), other);
        d.set_load_for_tests(other, 200.0); // past l_overload: infinite cost
        d.begin_batch(ConnId(0), 1);
        assert_eq!(d.assign_request(ConnId(0), t(9)), Assignment::Local);
        assert!(!d.mapping().is_mapped(t(9), conn_node));
    }

    #[test]
    fn batch_fractions_are_cleared_on_next_batch() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.mapping_mut_for_tests().add_replica(t(1), other);
        d.mapping_mut_for_tests().add_replica(t(2), other);

        d.begin_batch(ConnId(0), 2);
        assert!(d.assign_request(ConnId(0), t(1)).is_remote());
        assert!(d.assign_request(ConnId(0), t(2)).is_remote());
        // Two requests at 1/2 load each.
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);

        // The next batch clears the previous fractional charges.
        d.begin_batch(ConnId(0), 1);
        assert!(d.loads()[other.0].abs() < 1e-9);
    }

    #[test]
    fn close_clears_connection_and_fractions() {
        let mut d = ext_dispatcher(2);
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.mapping_mut_for_tests().add_replica(t(1), other);
        d.begin_batch(ConnId(0), 1);
        let _ = d.assign_request(ConnId(0), t(1));
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
        assert_eq!(d.active_connections(), 0);
    }

    #[test]
    fn migrate_semantics_moves_the_load_unit() {
        let mut d = Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::Migrate,
            2,
            LardParams::default(),
        );
        let conn_node = d.open_connection(ConnId(0), t(0));
        let other = NodeId(1 - conn_node.0);
        d.report_disk_queue(conn_node, 50);
        d.mapping_mut_for_tests().add_replica(t(1), other);
        d.begin_batch(ConnId(0), 1);
        let a = d.assign_request(ConnId(0), t(1));
        assert_eq!(a, Assignment::Remote(other));
        // The whole connection moved.
        assert_eq!(d.connection_node(ConnId(0)), Some(other));
        assert!((d.loads()[other.0] - 1.0).abs() < 1e-9);
        assert!(d.loads()[conn_node.0].abs() < 1e-9);
        d.close_connection(ConnId(0));
        assert!(d.loads().iter().all(|&l| l.abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn double_open_panics() {
        let mut d = ext_dispatcher(2);
        d.open_connection(ConnId(0), t(0));
        d.open_connection(ConnId(0), t(1));
    }

    #[test]
    #[should_panic(expected = "unknown connection")]
    fn assign_on_unknown_connection_panics() {
        let mut d = ext_dispatcher(2);
        let _ = d.assign_request(ConnId(99), t(0));
    }

    impl Dispatcher {
        /// Test-only access to mutate the mapping table directly.
        fn mapping_mut_for_tests(&mut self) -> &mut MappingTable {
            &mut self.mapping
        }

        /// Test-only override of a node's load estimate.
        fn set_load_for_tests(&mut self, node: NodeId, load: f64) {
            self.loads[node.0] = load;
        }
    }
}
