//! Cache-coherent mapping feedback: the control-plane data types that keep
//! the front-end's mapping *belief* in sync with the back-ends' real caches.
//!
//! The mapping table ([`crate::mapping`]) is the front-end's belief about
//! which nodes cache which targets. The paper studies how that belief
//! diverges from reality as back-ends silently evict: the table only grows
//! (entries are added on assignment and removed only by whole-node
//! [`ShardedMappingTable::evict_node`](crate::shard::ShardedMappingTable::evict_node)),
//! so long runs route requests to cold caches while believing they are hot.
//! This module closes the loop: back-ends report their cache-content
//! *deltas* ([`CacheEvent`] streams) over the control session, and
//! [`ConcurrentDispatcher::apply_cache_feedback`](crate::ConcurrentDispatcher::apply_cache_feedback)
//! folds them into
//!
//! * a per-node [`CacheMirror`] — the dispatcher's running reconstruction
//!   of each back-end's actual cache contents, and
//! * batched, per-shard mapping removals — a belief `(target, node)` is
//!   dropped when the node reports the target evicted (and not re-admitted).
//!
//! Feedback **never adds** a mapping: admissions only confirm existing
//! beliefs (and update the mirror). That asymmetry is what makes feedback
//! compose safely with node decommissioning — an in-flight feedback batch
//! cannot resurrect mappings that
//! [`evict_node`](crate::ConcurrentDispatcher::evict_node) just dropped.
//!
//! The **divergence** gauge counts believed `(target, node)` pairs whose
//! target the mirror says is *not* cached on that node — the paper's
//! belief-vs-reality gap as a single number. With feedback on and all
//! reports applied, a quiescent system converges to divergence 0.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{LockClass, Mutex};
use phttp_trace::TargetId;

use crate::types::NodeId;

/// One cache-content change observed by a back-end, in the order it
/// happened. A report is an ordered sequence of these, so the receiver
/// can replay them into an exact mirror of the cache's final state even
/// when a target is evicted and re-admitted within one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// The target entered the node's cache (first read after a miss).
    Admit(TargetId),
    /// The target was evicted from the node's cache (LRU pressure).
    Evict(TargetId),
}

impl CacheEvent {
    /// The target this event is about.
    pub fn target(self) -> TargetId {
        match self {
            CacheEvent::Admit(t) | CacheEvent::Evict(t) => t,
        }
    }
}

/// Monotonic feedback counters, all atomic (mirrors the `NodeStats`
/// idiom: shared-reference increments, snapshot for reporting).
#[derive(Debug, Default)]
pub struct CoherenceStats {
    /// Feedback reports applied.
    pub reports: AtomicU64,
    /// Admission events across all reports.
    pub admit_events: AtomicU64,
    /// Eviction events across all reports.
    pub evict_events: AtomicU64,
    /// Stale believed mappings removed because of eviction reports.
    pub stale_removed: AtomicU64,
    /// Admissions that confirmed an existing believed mapping.
    pub confirmations: AtomicU64,
}

/// Point-in-time view of [`CoherenceStats`] plus the divergence gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceSnapshot {
    /// Feedback reports applied so far.
    pub reports: u64,
    /// Admission events applied so far.
    pub admit_events: u64,
    /// Eviction events applied so far.
    pub evict_events: u64,
    /// Stale believed mappings removed so far.
    pub stale_removed: u64,
    /// Admissions that confirmed an existing belief.
    pub confirmations: u64,
    /// Believed `(target, node)` pairs the mirror says are not actually
    /// cached — the belief-vs-reality gap at snapshot time.
    pub divergence: u64,
    /// Total believed `(target, node)` pairs at snapshot time.
    pub believed_pairs: u64,
}

impl CoherenceStats {
    /// Counter part of a snapshot (the caller fills in the gauges).
    pub fn snapshot(&self) -> CoherenceSnapshot {
        CoherenceSnapshot {
            reports: self.reports.load(Ordering::Relaxed),
            admit_events: self.admit_events.load(Ordering::Relaxed),
            evict_events: self.evict_events.load(Ordering::Relaxed),
            stale_removed: self.stale_removed.load(Ordering::Relaxed),
            confirmations: self.confirmations.load(Ordering::Relaxed),
            divergence: 0,
            believed_pairs: 0,
        }
    }
}

/// The dispatcher's reconstruction of each back-end's cache contents,
/// built purely from reported [`CacheEvent`] deltas (caches start empty,
/// so deltas determine contents exactly).
///
/// Lock order: a mirror node lock is only ever taken while holding **no**
/// mapping-shard lock, or *after* a shard lock (shard → mirror). It is
/// never held across a shard acquisition, so it cannot participate in a
/// deadlock cycle with the ascending-shard-order discipline of
/// [`write_set`](crate::shard::ShardedMappingTable::write_set).
#[derive(Debug)]
pub struct CacheMirror {
    nodes: Box<[Mutex<HashSet<TargetId>>]>,
}

impl CacheMirror {
    /// An empty mirror for `num_nodes` back-ends.
    pub fn new(num_nodes: usize) -> Self {
        CacheMirror {
            nodes: (0..num_nodes)
                .map(|n| Mutex::new_classed(LockClass::mirror(n as u32), HashSet::new()))
                .collect(),
        }
    }

    /// Number of mirrored nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Replays `events` in order into `node`'s mirrored set, then reports
    /// each *distinct* target mentioned along with whether it is cached in
    /// the final state (`true` = present).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn apply(&self, node: NodeId, events: &[CacheEvent]) -> Vec<(TargetId, bool)> {
        let mut set = self.nodes[node.0].lock();
        for ev in events {
            match *ev {
                CacheEvent::Admit(t) => {
                    set.insert(t);
                }
                CacheEvent::Evict(t) => {
                    set.remove(&t);
                }
            }
        }
        let mut touched: Vec<TargetId> = events.iter().map(|e| e.target()).collect();
        touched.sort_unstable();
        touched.dedup();
        touched.into_iter().map(|t| (t, set.contains(&t))).collect()
    }

    /// Whether the mirror believes `target` is cached on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn contains(&self, node: NodeId, target: TargetId) -> bool {
        self.nodes[node.0].lock().contains(&target)
    }

    /// How many of `targets` the mirror says are **not** cached on
    /// `node` — one lock acquisition for the whole batch (the
    /// divergence audit's primitive; per-target `contains` calls would
    /// pay one lock cycle per believed pair).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn count_missing(&self, node: NodeId, targets: &[TargetId]) -> u64 {
        let set = self.nodes[node.0].lock();
        targets.iter().filter(|t| !set.contains(t)).count() as u64
    }

    /// Number of targets mirrored as cached on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cached_count(&self, node: NodeId) -> usize {
        self.nodes[node.0].lock().len()
    }

    /// Forgets everything mirrored for `node` (decommissioning).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn clear(&self, node: NodeId) {
        self.nodes[node.0].lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    #[test]
    fn mirror_replays_in_order() {
        let m = CacheMirror::new(2);
        let out = m.apply(
            NodeId(0),
            &[
                CacheEvent::Admit(t(1)),
                CacheEvent::Admit(t(2)),
                CacheEvent::Evict(t(1)),
                // Evicted then re-admitted: final state is "cached".
                CacheEvent::Admit(t(1)),
                // Admitted then evicted: final state is "not cached".
                CacheEvent::Admit(t(3)),
                CacheEvent::Evict(t(3)),
            ],
        );
        assert_eq!(out, vec![(t(1), true), (t(2), true), (t(3), false)]);
        assert!(m.contains(NodeId(0), t(1)));
        assert!(m.contains(NodeId(0), t(2)));
        assert!(!m.contains(NodeId(0), t(3)));
        assert_eq!(m.cached_count(NodeId(0)), 2);
        // Other nodes are untouched.
        assert_eq!(m.cached_count(NodeId(1)), 0);
    }

    #[test]
    fn mirror_clear_forgets_a_node() {
        let m = CacheMirror::new(1);
        m.apply(NodeId(0), &[CacheEvent::Admit(t(7))]);
        assert_eq!(m.cached_count(NodeId(0)), 1);
        m.clear(NodeId(0));
        assert_eq!(m.cached_count(NodeId(0)), 0);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let s = CoherenceStats::default();
        s.reports.fetch_add(2, Ordering::Relaxed);
        s.evict_events.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.reports, 2);
        assert_eq!(snap.evict_events, 5);
        assert_eq!(snap.divergence, 0, "gauges are filled by the caller");
    }
}
