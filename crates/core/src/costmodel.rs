//! The paper's CPU cost model: per-connection, per-request, and per-byte
//! costs of the back-end server software and of the distribution mechanisms.
//!
//! The paper derived these by measuring Apache 1.3.3 and the Flash research
//! server on 300 MHz Pentium II FreeBSD machines; the scanned copy lost the
//! numeric literals, so the values here are reconstructed from the companion
//! ASPLOS '98 LARD paper and calibrated to reproduce the published *shapes*
//! (DESIGN.md §6.6 has the full derivation table). All times are integer
//! microseconds so that the simulator, the analytic model (Figures 5/6) and
//! the benchmark harness share one source of truth.

use serde::{Deserialize, Serialize};

/// Number of 512-byte transmit units in `bytes` (rounded up).
pub fn chunks(bytes: u64) -> u64 {
    bytes.div_ceil(512)
}

/// Per-node CPU costs of the back-end server software.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCosts {
    /// TCP connection establishment, charged once per client connection.
    pub conn_establish_us: u64,
    /// TCP connection teardown, charged at connection close.
    pub conn_teardown_us: u64,
    /// Per-request processing (parse, dispatch to handler, logging).
    pub per_request_us: u64,
    /// Transmit processing per 512 bytes of response data.
    pub xmit_per_512_us: u64,
}

impl ServerCosts {
    /// Apache 1.3.3-like cost profile.
    ///
    /// With these values an 8 KB cached document costs
    /// `145 + 145 + 290 + 16·40 = 1220 µs` per HTTP/1.0 request
    /// (~820 requests/s on one CPU), in the regime the ASPLOS paper reports.
    pub fn apache() -> Self {
        ServerCosts {
            conn_establish_us: 145,
            conn_teardown_us: 145,
            per_request_us: 290,
            xmit_per_512_us: 40,
        }
    }

    /// Flash-like cost profile: an aggressively optimized event-driven
    /// server with much cheaper connection and request handling.
    pub fn flash() -> Self {
        ServerCosts {
            conn_establish_us: 50,
            conn_teardown_us: 50,
            per_request_us: 90,
            xmit_per_512_us: 25,
        }
    }

    /// CPU microseconds to transmit `bytes` of response data.
    pub fn xmit_us(&self, bytes: u64) -> u64 {
        self.xmit_per_512_us * chunks(bytes)
    }
}

/// Costs of the distribution mechanism itself (front-end CPU plus the
/// back-end-side mechanism work), per DESIGN.md §6.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismCosts {
    /// Front-end: accept a client connection, run the policy, initiate the
    /// handoff (or register a relay session).
    pub fe_conn_us: u64,
    /// Front-end: inspect/tag one subsequent request on a persistent
    /// connection (request-granularity mechanisms only).
    pub fe_req_us: u64,
    /// Front-end share of coordinating one connection migration.
    pub fe_migrate_us: u64,
    /// Front-end relay cost per 512 bytes, each direction combined
    /// (relaying front-end only).
    pub fe_relay_per_512_us: u64,
    /// Back-end side of accepting a TCP handoff.
    pub be_handoff_us: u64,
    /// Old back-end's share of migrating a connection away.
    pub be_migrate_out_us: u64,
    /// New back-end's share of accepting a migrated connection.
    pub be_migrate_in_us: u64,
    /// Connection-handling node: issue one lateral (back-end forwarding)
    /// request to a peer.
    pub be_lateral_req_us: u64,
    /// Connection-handling node: receive and re-send 512 bytes of a
    /// laterally fetched response.
    pub be_fwd_per_512_us: u64,
}

impl MechanismCosts {
    /// Mechanism costs paired with the Apache server profile.
    ///
    /// Migration total (250+250+100 = 600 µs) against lateral forwarding
    /// (80 µs + 20 µs/512 B) puts the analytic crossover of Figure 5 near
    /// `(600-80)/20 = 26` chunks ≈ 13 KB — right at the paper's "average
    /// content size in today's Web traffic" anchor, which is what makes
    /// back-end forwarding competitive on Web workloads.
    pub fn apache() -> Self {
        MechanismCosts {
            fe_conn_us: 120,
            fe_req_us: 60,
            fe_migrate_us: 100,
            fe_relay_per_512_us: 20,
            be_handoff_us: 150,
            be_migrate_out_us: 250,
            be_migrate_in_us: 250,
            be_lateral_req_us: 80,
            be_fwd_per_512_us: 20,
        }
    }

    /// Mechanism costs paired with the Flash profile: the kernel handoff
    /// work shrinks less than the server-side work, so forwarding's
    /// relative cost rises and the crossover moves left (Figure 6).
    pub fn flash() -> Self {
        MechanismCosts {
            fe_conn_us: 120,
            fe_req_us: 60,
            fe_migrate_us: 70,
            fe_relay_per_512_us: 20,
            be_handoff_us: 100,
            be_migrate_out_us: 175,
            be_migrate_in_us: 175,
            be_lateral_req_us: 60,
            be_fwd_per_512_us: 20,
        }
    }

    /// Total CPU cost of one connection migration, across all parties.
    pub fn migration_total_us(&self) -> u64 {
        self.fe_migrate_us + self.be_migrate_out_us + self.be_migrate_in_us
    }

    /// Connection-handling-node CPU microseconds to forward a `bytes`-sized
    /// response fetched laterally (request issue + receive/resend).
    pub fn fwd_us(&self, bytes: u64) -> u64 {
        self.be_lateral_req_us + self.be_fwd_per_512_us * chunks(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apache_http10_request_cost_anchor() {
        // The DESIGN.md anchor: an 8 KB cached document over HTTP/1.0 costs
        // 1220 µs of Apache CPU (~820 req/s on one node).
        let c = ServerCosts::apache();
        let total =
            c.conn_establish_us + c.conn_teardown_us + c.per_request_us + c.xmit_us(8 * 1024);
        assert_eq!(total, 1220);
    }

    #[test]
    fn flash_is_uniformly_cheaper_than_apache() {
        let a = ServerCosts::apache();
        let f = ServerCosts::flash();
        assert!(f.conn_establish_us < a.conn_establish_us);
        assert!(f.per_request_us < a.per_request_us);
        assert!(f.xmit_per_512_us < a.xmit_per_512_us);
    }

    #[test]
    fn xmit_rounds_up_to_chunks() {
        let c = ServerCosts::apache();
        assert_eq!(c.xmit_us(1), 40);
        assert_eq!(c.xmit_us(512), 40);
        assert_eq!(c.xmit_us(513), 80);
        assert_eq!(c.xmit_us(0), 0);
        assert_eq!(chunks(1025), 3);
    }

    #[test]
    fn analytic_crossover_positions() {
        // Crossover chunk count ≈ (migration - lateral) / fwd_per_512.
        let a = MechanismCosts::apache();
        let cross_a =
            (a.migration_total_us() - a.be_lateral_req_us) as f64 / a.be_fwd_per_512_us as f64;
        let f = MechanismCosts::flash();
        let cross_f =
            (f.migration_total_us() - f.be_lateral_req_us) as f64 / f.be_fwd_per_512_us as f64;
        // Apache crossover ≈ 13 KB; Flash's must be smaller (faster server
        // makes forwarding relatively more expensive).
        assert!((cross_a * 512.0 / 1024.0 - 13.0).abs() < 1.0);
        assert!(cross_f < cross_a);
    }

    #[test]
    fn fwd_cost_is_affine_in_size() {
        let m = MechanismCosts::apache();
        assert_eq!(m.fwd_us(0), m.be_lateral_req_us);
        assert_eq!(m.fwd_us(1024) - m.fwd_us(512), m.be_fwd_per_512_us);
    }
}
