//! The front-end **tier** layer: partitioning targets across several
//! front-end instances and merging their dispatcher state.
//!
//! The paper's answer to front-end saturation is TCP handoff (§7): run
//! more than one front-end behind one virtual IP. That turns the
//! dispatcher's private state — mapping beliefs and load estimates —
//! into *distributed* state. This module provides the two pieces the
//! tier needs, both pure data structures (no sockets, no threads), so
//! every merge path is unit- and property-testable:
//!
//! * [`Ring`]: a consistent-hash ring over front-end indices. Each
//!   target has exactly one **owner** front-end — the authority for
//!   that target's mapping/coherence beliefs. Adding or removing a
//!   front-end moves only the keys that front-end gains or loses
//!   (bounded movement; property-tested in `tests/tier_props.rs`).
//!   The ring composes *orthogonally* with the [`Policy`](crate::Policy)
//!   layer: policies still decide which **back-end node** serves a
//!   request; the ring only decides which **front-end** owns the
//!   belief state consulted by that decision.
//! * [`DispatcherSnapshot`] / [`StateDelta`] / [`TierView`]: a
//!   serializable export of one dispatcher's state, the per-origin
//!   delta front-ends gossip on the control plane, and the receiving
//!   side's merged view. The merge is **commutative and idempotent**:
//!   each delta carries its origin's full owned share stamped with a
//!   per-origin sequence number, and the view keeps the highest
//!   sequence per origin (last-writer-wins per origin). Any delivery
//!   order, including duplicates, converges to the same view — the
//!   property that lets front-ends exchange state peer-to-peer with no
//!   coordinator, and lets a non-owner decide locally from a possibly
//!   stale view.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use phttp_trace::TargetId;

use crate::types::NodeId;

/// Index of a front-end instance within the tier (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeId(pub usize);

impl fmt::Display for FeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fe{}", self.0)
    }
}

/// Default virtual points per front-end on the [`Ring`]. Enough that a
/// 2–8 member ring partitions targets within a few percent of evenly.
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64: the finalizer used for both ring points and target keys.
/// Deterministic and platform-independent, so a ring built from the
/// same membership always partitions targets identically (the
/// simulator and both prototype io models must agree).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Consistent-hash ring assigning each target one owning front-end.
///
/// Points are keyed `(hash, fe)` so two front-ends hashing to the same
/// position cannot collide silently — the tie is broken by index,
/// deterministically — and removing a member removes exactly the
/// points it inserted.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    points: BTreeMap<(u64, usize), ()>,
    members: Vec<usize>,
}

impl Ring {
    /// A ring over front-ends `0..front_ends` with [`DEFAULT_VNODES`]
    /// virtual points each.
    ///
    /// # Panics
    ///
    /// Panics if `front_ends == 0`.
    pub fn new(front_ends: usize) -> Self {
        Self::with_vnodes(front_ends, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-point count (tests sweep this).
    ///
    /// # Panics
    ///
    /// Panics if `front_ends == 0` or `vnodes == 0`.
    pub fn with_vnodes(front_ends: usize, vnodes: usize) -> Self {
        assert!(front_ends > 0, "tier needs at least one front-end");
        assert!(vnodes > 0, "ring needs at least one virtual point");
        let mut ring = Ring {
            vnodes,
            points: BTreeMap::new(),
            members: Vec::new(),
        };
        for f in 0..front_ends {
            ring.add_fe(FeId(f));
        }
        ring
    }

    fn point(fe: usize, replica: usize) -> u64 {
        splitmix64(((fe as u64) << 32) ^ replica as u64 ^ 0xA076_1D64_78BD_642F)
    }

    /// Adds a front-end (no-op if already a member).
    pub fn add_fe(&mut self, fe: FeId) {
        if self.members.contains(&fe.0) {
            return;
        }
        for r in 0..self.vnodes {
            self.points.insert((Self::point(fe.0, r), fe.0), ());
        }
        self.members.push(fe.0);
        self.members.sort_unstable();
    }

    /// Removes a front-end (no-op if not a member).
    ///
    /// # Panics
    ///
    /// Panics if removal would empty the ring — an ownerless tier has
    /// no meaning; callers decommissioning the last front-end are
    /// tearing the cluster down, not rebalancing it.
    pub fn remove_fe(&mut self, fe: FeId) {
        if !self.members.contains(&fe.0) {
            return;
        }
        assert!(self.members.len() > 1, "cannot remove the last front-end");
        for r in 0..self.vnodes {
            self.points.remove(&(Self::point(fe.0, r), fe.0));
        }
        self.members.retain(|&m| m != fe.0);
    }

    /// The front-end owning `target`'s belief state: the first ring
    /// point at or after the target's hash, wrapping.
    pub fn owner(&self, target: TargetId) -> FeId {
        let h = splitmix64(target.0 as u64 ^ 0x6C62_272E_07BB_0142);
        let fe = self
            .points
            .range((h, 0)..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(&(_, f), ())| f)
            .expect("ring is never empty");
        FeId(fe)
    }

    /// Current members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of member front-ends.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false` — the ring refuses to become empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `fe` is a member.
    pub fn contains(&self, fe: FeId) -> bool {
        self.members.contains(&fe.0)
    }
}

/// A full export of one dispatcher's tier-relevant state: fixed-point
/// local loads per back-end node and the complete believed mapping.
///
/// Snapshots are taken by the owner-side host (see
/// `ConcurrentDispatcher::snapshot`) and projected into per-share
/// [`StateDelta`]s for gossip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatcherSnapshot {
    /// Fixed-point ([`LOAD_UNIT`](crate::LOAD_UNIT)) local load per node.
    pub loads: Vec<i64>,
    /// Every believed `(target, nodes)` mapping.
    pub mapping: Vec<(TargetId, Vec<NodeId>)>,
}

impl DispatcherSnapshot {
    /// Projects the share of this snapshot that `origin` owns under
    /// `ring` into a gossip delta stamped `seq`. Loads are carried
    /// whole (load is per-node, not per-target); mappings are filtered
    /// to the origin's partition.
    pub fn delta_for(&self, origin: FeId, seq: u64, ring: &Ring) -> StateDelta {
        let mapping = self
            .mapping
            .iter()
            .filter(|(t, _)| ring.owner(*t) == origin)
            .cloned()
            .collect();
        StateDelta {
            origin,
            seq,
            loads: self.loads.clone(),
            mapping,
        }
    }
}

/// One front-end's gossiped state: its **full current owned share**,
/// replacing (not patching) whatever the receiver previously held for
/// this origin. Full-state-per-origin plus last-writer-wins by `seq`
/// is what makes [`TierView::merge`] commutative — there is no
/// patch-ordering to get wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDelta {
    /// The front-end this state describes.
    pub origin: FeId,
    /// Monotonic per-origin sequence number; higher wins.
    pub seq: u64,
    /// The origin's fixed-point local load estimate per back-end node.
    pub loads: Vec<i64>,
    /// The origin's owned mapping share, in full.
    pub mapping: Vec<(TargetId, Vec<NodeId>)>,
}

/// Wire-format errors for [`StateDelta::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The buffer ended before the encoded length said it would.
    Truncated,
    /// A count or index field is inconsistent with the payload.
    Malformed,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "truncated state delta"),
            DeltaError::Malformed => write!(f, "malformed state delta"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl StateDelta {
    /// Serializes the delta (little-endian, length-free: the control
    /// plane's framing supplies the length).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.loads.len() * 8 + self.mapping.len() * 8);
        out.extend_from_slice(&(self.origin.0 as u32).to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.loads.len() as u16).to_le_bytes());
        for l in &self.loads {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&(self.mapping.len() as u32).to_le_bytes());
        for (t, nodes) in &self.mapping {
            out.extend_from_slice(&t.0.to_le_bytes());
            out.push(nodes.len() as u8);
            for n in nodes {
                out.extend_from_slice(&(n.0 as u16).to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a delta produced by [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<StateDelta, DeltaError> {
        struct Cur<'a>(&'a [u8]);
        impl Cur<'_> {
            fn take<const N: usize>(&mut self) -> Result<[u8; N], DeltaError> {
                if self.0.len() < N {
                    return Err(DeltaError::Truncated);
                }
                let (head, tail) = self.0.split_at(N);
                self.0 = tail;
                Ok(head.try_into().expect("split_at guarantees length"))
            }
        }
        let mut cur = Cur(buf);
        let origin = FeId(u32::from_le_bytes(cur.take()?) as usize);
        let seq = u64::from_le_bytes(cur.take()?);
        let n_nodes = u16::from_le_bytes(cur.take()?) as usize;
        let mut loads = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            loads.push(i64::from_le_bytes(cur.take()?));
        }
        let n_map = u32::from_le_bytes(cur.take()?) as usize;
        let mut mapping = Vec::with_capacity(n_map.min(1 << 16));
        for _ in 0..n_map {
            let t = TargetId(u32::from_le_bytes(cur.take()?));
            let k = cur.take::<1>()?[0] as usize;
            let mut nodes = Vec::with_capacity(k);
            for _ in 0..k {
                let n = u16::from_le_bytes(cur.take()?) as usize;
                if n >= n_nodes {
                    return Err(DeltaError::Malformed);
                }
                nodes.push(NodeId(n));
            }
            mapping.push((t, nodes));
        }
        if !cur.0.is_empty() {
            return Err(DeltaError::Malformed);
        }
        Ok(StateDelta {
            origin,
            seq,
            loads,
            mapping,
        })
    }
}

/// What a [`TierView::merge`] changed, as instructions for the host to
/// materialize into its local dispatcher.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Whether the delta advanced the view (false: stale or self-echo).
    pub applied: bool,
    /// Targets whose adopted mapping is new or changed, with the
    /// owner's node set to install.
    pub upserts: Vec<(TargetId, Vec<NodeId>)>,
    /// Targets the owner no longer maps at all.
    pub removals: Vec<TargetId>,
}

#[derive(Debug, Clone)]
struct OriginState {
    seq: u64,
    loads: Vec<i64>,
    mapping: HashMap<TargetId, Vec<NodeId>>,
}

/// One front-end's merged view of its peers: per-origin
/// last-writer-wins state, independent of delivery order.
#[derive(Debug)]
pub struct TierView {
    self_fe: FeId,
    num_nodes: usize,
    origins: HashMap<FeId, OriginState>,
}

impl TierView {
    /// An empty view for front-end `self_fe` over `num_nodes` back-ends.
    pub fn new(self_fe: FeId, num_nodes: usize) -> Self {
        TierView {
            self_fe,
            num_nodes,
            origins: HashMap::new(),
        }
    }

    /// Merges one gossiped delta. Deltas from `self` (echoes) and
    /// deltas whose sequence does not advance the stored one are
    /// ignored (`applied == false`, no instructions); node-count
    /// mismatches are treated the same way rather than corrupting the
    /// view. Otherwise the origin's stored state is replaced wholesale
    /// and the outcome lists the mapping difference for the host to
    /// adopt.
    pub fn merge(&mut self, delta: &StateDelta) -> MergeOutcome {
        if delta.origin == self.self_fe
            || delta.loads.len() != self.num_nodes
            || self
                .origins
                .get(&delta.origin)
                .is_some_and(|s| s.seq >= delta.seq)
        {
            return MergeOutcome::default();
        }
        let new_map: HashMap<TargetId, Vec<NodeId>> = delta
            .mapping
            .iter()
            .filter(|(_, nodes)| !nodes.is_empty())
            .cloned()
            .collect();
        let old = self.origins.insert(
            delta.origin,
            OriginState {
                seq: delta.seq,
                loads: delta.loads.clone(),
                mapping: new_map.clone(),
            },
        );
        let old_map = old.map(|s| s.mapping).unwrap_or_default();
        let mut upserts: Vec<(TargetId, Vec<NodeId>)> = new_map
            .iter()
            .filter(|(t, nodes)| old_map.get(t) != Some(nodes))
            .map(|(&t, nodes)| (t, nodes.clone()))
            .collect();
        let mut removals: Vec<TargetId> = old_map
            .keys()
            .filter(|t| !new_map.contains_key(t))
            .copied()
            .collect();
        // Deterministic instruction order (HashMap iteration is not).
        upserts.sort_by_key(|(t, _)| t.0);
        removals.sort_by_key(|t| t.0);
        MergeOutcome {
            applied: true,
            upserts,
            removals,
        }
    }

    /// Forgets a decommissioned origin entirely; the outcome's
    /// removals are its whole adopted share (the ring's new owner will
    /// re-assert whatever is still live).
    pub fn drop_origin(&mut self, fe: FeId) -> MergeOutcome {
        match self.origins.remove(&fe) {
            None => MergeOutcome::default(),
            Some(state) => {
                let mut removals: Vec<TargetId> = state.mapping.into_keys().collect();
                removals.sort_by_key(|t| t.0);
                MergeOutcome {
                    applied: true,
                    upserts: Vec::new(),
                    removals,
                }
            }
        }
    }

    /// The summed fixed-point load every *peer* origin reports per
    /// node — the remote bias a host feeds into
    /// [`LoadTracker::set_remote_fixed`](crate::LoadTracker::set_remote_fixed)
    /// so local decisions see tier-wide load.
    pub fn remote_load_fixed(&self) -> Vec<i64> {
        let mut out = vec![0i64; self.num_nodes];
        for state in self.origins.values() {
            for (slot, l) in out.iter_mut().zip(&state.loads) {
                *slot += l;
            }
        }
        out
    }

    /// The highest sequence merged from `fe`, if any.
    pub fn origin_seq(&self, fe: FeId) -> Option<u64> {
        self.origins.get(&fe).map(|s| s.seq)
    }

    /// A canonical (target-ascending) dump of the mapping share adopted
    /// from `fe`, or `None` if no delta from `fe` has ever been merged.
    /// Convergence tests compare these dumps for whole-view equality —
    /// stronger than the load/seq spot-checks.
    pub fn origin_mapping(&self, fe: FeId) -> Option<Vec<(TargetId, Vec<NodeId>)>> {
        self.origins.get(&fe).map(|s| {
            let mut v: Vec<_> = s.mapping.iter().map(|(&t, n)| (t, n.clone())).collect();
            v.sort_by_key(|(t, _)| t.0);
            v
        })
    }

    /// The per-node loads last merged from `fe`, if any.
    pub fn origin_loads(&self, fe: FeId) -> Option<&[i64]> {
        self.origins.get(&fe).map(|s| s.loads.as_slice())
    }

    /// Number of peer origins currently held.
    pub fn num_origins(&self) -> usize {
        self.origins.len()
    }

    /// The front-end this view belongs to.
    pub fn self_fe(&self) -> FeId {
        self.self_fe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    #[test]
    fn ring_covers_every_target() {
        let ring = Ring::new(3);
        for i in 0..1000 {
            let owner = ring.owner(t(i));
            assert!(ring.contains(owner), "target {i} owned by non-member");
        }
    }

    #[test]
    fn ring_partition_is_reasonably_balanced() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.owner(t(i)).0] += 1;
        }
        for (f, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2000).contains(&c),
                "fe{f} owns {c} of 4000 targets — pathological imbalance"
            );
        }
    }

    #[test]
    fn removal_moves_only_the_removed_members_keys() {
        let mut ring = Ring::new(3);
        let before: Vec<FeId> = (0..2000).map(|i| ring.owner(t(i))).collect();
        ring.remove_fe(FeId(1));
        for i in 0..2000u32 {
            let after = ring.owner(t(i));
            if before[i as usize] != FeId(1) {
                assert_eq!(after, before[i as usize], "unrelated key {i} moved");
            } else {
                assert_ne!(after, FeId(1));
            }
        }
    }

    #[test]
    fn add_then_remove_is_identity() {
        let mut ring = Ring::new(2);
        let before: Vec<FeId> = (0..500).map(|i| ring.owner(t(i))).collect();
        ring.add_fe(FeId(7));
        ring.remove_fe(FeId(7));
        let after: Vec<FeId> = (0..500).map(|i| ring.owner(t(i))).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "last front-end")]
    fn cannot_empty_the_ring() {
        let mut ring = Ring::new(1);
        ring.remove_fe(FeId(0));
    }

    #[test]
    fn delta_roundtrips() {
        let d = StateDelta {
            origin: FeId(2),
            seq: 99,
            loads: vec![1 << 20, -3, 0],
            mapping: vec![(t(5), vec![NodeId(0), NodeId(2)]), (t(9), vec![NodeId(1)])],
        };
        let bytes = d.encode();
        assert_eq!(StateDelta::decode(&bytes).unwrap(), d);
        assert_eq!(StateDelta::decode(&bytes[..4]), Err(DeltaError::Truncated));
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(StateDelta::decode(&extra), Err(DeltaError::Malformed));
    }

    #[test]
    fn decode_rejects_out_of_range_node() {
        let d = StateDelta {
            origin: FeId(0),
            seq: 1,
            loads: vec![0, 0],
            mapping: vec![(t(1), vec![NodeId(1)])],
        };
        let mut bytes = d.encode();
        // Patch the node index (last two bytes) past num_nodes.
        let n = bytes.len();
        bytes[n - 2..].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(StateDelta::decode(&bytes), Err(DeltaError::Malformed));
    }

    #[test]
    fn merge_is_lww_per_origin_and_reports_diffs() {
        let mut view = TierView::new(FeId(0), 2);
        let d1 = StateDelta {
            origin: FeId(1),
            seq: 1,
            loads: vec![5, 0],
            mapping: vec![(t(1), vec![NodeId(0)]), (t(2), vec![NodeId(1)])],
        };
        let out = view.merge(&d1);
        assert!(out.applied);
        assert_eq!(out.upserts.len(), 2);
        assert!(out.removals.is_empty());

        // Stale and duplicate deltas are ignored.
        assert!(!view.merge(&d1).applied);

        let d2 = StateDelta {
            origin: FeId(1),
            seq: 2,
            loads: vec![0, 7],
            mapping: vec![(t(1), vec![NodeId(0), NodeId(1)])],
        };
        let out = view.merge(&d2);
        assert!(out.applied);
        assert_eq!(out.upserts, vec![(t(1), vec![NodeId(0), NodeId(1)])]);
        assert_eq!(out.removals, vec![t(2)]);
        assert_eq!(view.remote_load_fixed(), vec![0, 7]);

        // Out-of-order redelivery of the older delta changes nothing.
        assert!(!view.merge(&d1).applied);
        assert_eq!(view.origin_seq(FeId(1)), Some(2));
    }

    #[test]
    fn merge_ignores_self_and_mismatched_node_counts() {
        let mut view = TierView::new(FeId(0), 2);
        let echo = StateDelta {
            origin: FeId(0),
            seq: 5,
            loads: vec![0, 0],
            mapping: Vec::new(),
        };
        assert!(!view.merge(&echo).applied);
        let bad = StateDelta {
            origin: FeId(1),
            seq: 1,
            loads: vec![0; 3],
            mapping: Vec::new(),
        };
        assert!(!view.merge(&bad).applied);
        assert_eq!(view.num_origins(), 0);
    }

    #[test]
    fn drop_origin_removes_its_whole_share() {
        let mut view = TierView::new(FeId(0), 2);
        view.merge(&StateDelta {
            origin: FeId(1),
            seq: 1,
            loads: vec![9, 9],
            mapping: vec![(t(3), vec![NodeId(0)]), (t(4), vec![NodeId(1)])],
        });
        let out = view.drop_origin(FeId(1));
        assert!(out.applied);
        assert_eq!(out.removals, vec![t(3), t(4)]);
        assert_eq!(view.remote_load_fixed(), vec![0, 0]);
        assert!(!view.drop_origin(FeId(1)).applied);
    }

    #[test]
    fn snapshot_projection_filters_by_ownership() {
        let ring = Ring::new(2);
        let snap = DispatcherSnapshot {
            loads: vec![1, 2],
            mapping: (0..200).map(|i| (t(i), vec![NodeId(0)])).collect(),
        };
        let d0 = snap.delta_for(FeId(0), 1, &ring);
        let d1 = snap.delta_for(FeId(1), 1, &ring);
        assert_eq!(d0.mapping.len() + d1.mapping.len(), 200);
        assert!(d0.mapping.iter().all(|(x, _)| ring.owner(*x) == FeId(0)));
        assert!(d1.mapping.iter().all(|(x, _)| ring.owner(*x) == FeId(1)));
        assert_eq!(d0.loads, vec![1, 2]);
    }
}
