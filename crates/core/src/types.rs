//! Common identifier types for the policy layer.

use std::fmt;

/// Index of a back-end node within the cluster (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "be{}", self.0)
    }
}

/// Front-end-assigned identifier of a client connection.
///
/// The host system (simulator or prototype front-end) allocates these; the
/// dispatcher only uses them as keys for per-connection policy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Where a request arriving on an already-handed-off connection is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Served by the connection-handling node itself.
    Local,
    /// Served by another node. Under back-end forwarding the connection
    /// node fetches laterally; under multiple handoff the connection
    /// migrates (the dispatcher has already re-homed its state).
    Remote(NodeId),
}

impl Assignment {
    /// Returns the serving node, given the connection-handling node.
    pub fn serving_node(self, conn_node: NodeId) -> NodeId {
        match self {
            Assignment::Local => conn_node,
            Assignment::Remote(n) => n,
        }
    }

    /// Returns `true` if the request is served off the connection node.
    pub fn is_remote(self) -> bool {
        matches!(self, Assignment::Remote(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_serving_node() {
        assert_eq!(Assignment::Local.serving_node(NodeId(3)), NodeId(3));
        assert_eq!(
            Assignment::Remote(NodeId(1)).serving_node(NodeId(3)),
            NodeId(1)
        );
        assert!(!Assignment::Local.is_remote());
        assert!(Assignment::Remote(NodeId(0)).is_remote());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(2).to_string(), "be2");
        assert_eq!(ConnId(7).to_string(), "conn7");
    }
}
