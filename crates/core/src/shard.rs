//! Lock sharding for the mapping table and per-connection state.
//!
//! The mapping table is split into `N` shards keyed by [`TargetId`]
//! hash; a dispatch decision for a target takes only that target's
//! shard lock, so decisions for different targets proceed in parallel.
//! Connection state is sharded the same way by [`ConnId`]. Both shard
//! counts are powers of two chosen at construction.

use std::collections::HashMap;

use parking_lot::{LockClass, Mutex, RwLock, RwLockWriteGuard};
use phttp_trace::TargetId;

use crate::mapping::MappingTable;
use crate::types::{ConnId, NodeId};

/// Rounds a requested shard count up to a power of two (min 1).
fn shard_count(requested: usize) -> usize {
    requested.max(1).next_power_of_two()
}

/// Fibonacci-hash spread of a key over `mask + 1` shards.
fn spread(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & mask
}

/// [`MappingTable`] behind `N` independent locks keyed by target.
#[derive(Debug)]
pub struct ShardedMappingTable {
    shards: Box<[RwLock<MappingTable>]>,
    mask: usize,
}

impl ShardedMappingTable {
    /// Creates an empty table over `shards` locks (rounded up to a
    /// power of two).
    pub fn new(shards: usize) -> Self {
        let n = shard_count(shards);
        ShardedMappingTable {
            shards: (0..n)
                .map(|i| {
                    RwLock::new_classed(LockClass::mapping_shard(i as u32), MappingTable::new())
                })
                .collect(),
            mask: n - 1,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, target: TargetId) -> &RwLock<MappingTable> {
        &self.shards[spread(target.0 as u64, self.mask)]
    }

    /// Runs `f` with shared access to `target`'s shard.
    #[track_caller]
    pub fn read<R>(&self, target: TargetId, f: impl FnOnce(&MappingTable) -> R) -> R {
        f(&self.shard(target).read())
    }

    /// Runs `f` with exclusive access to `target`'s shard. Holding the
    /// lock across a decision *and* its mapping update is what keeps
    /// per-target policy decisions atomic without any global lock.
    #[track_caller]
    pub fn write<R>(&self, target: TargetId, f: impl FnOnce(&mut MappingTable) -> R) -> R {
        f(&mut self.shard(target).write())
    }

    /// The nodes believed to cache `target` (cloned out of the shard).
    pub fn nodes(&self, target: TargetId) -> Vec<NodeId> {
        self.read(target, |m| m.nodes(target).to_vec())
    }

    /// Whether `target` is mapped to `node`.
    pub fn is_mapped(&self, target: TargetId, node: NodeId) -> bool {
        self.read(target, |m| m.is_mapped(target, node))
    }

    /// Total targets with at least one mapping, across shards.
    pub fn num_targets(&self) -> usize {
        self.shards.iter().map(|s| s.read().num_targets()).sum()
    }

    /// Total (target, node) pairs, across shards.
    pub fn num_replicas(&self) -> usize {
        self.shards.iter().map(|s| s.read().num_replicas()).sum()
    }

    /// Mean replicas per mapped target (1.0 = pure partitioning).
    pub fn replication_factor(&self) -> f64 {
        let targets = self.num_targets();
        if targets == 0 {
            return 0.0;
        }
        self.num_replicas() as f64 / targets as f64
    }

    /// Drops every mapping that references `node` (decommissioning).
    pub fn evict_node(&self, node: NodeId) {
        for shard in self.shards.iter() {
            shard.write().evict_node(node);
        }
    }

    /// Visits every believed `(target, node)` pair, shard by shard under
    /// shared locks (divergence audits, coherence metrics). Pairs added
    /// or removed concurrently in shards not yet visited may or may not
    /// be seen — the usual sharded-snapshot caveat.
    pub fn for_each_pair(&self, mut f: impl FnMut(TargetId, NodeId)) {
        for shard in self.shards.iter() {
            shard.read().for_each_pair(&mut f);
        }
    }

    /// Removes the believed mappings `(target, node)` for every target in
    /// `stale`, taking each distinct covering shard's write lock exactly
    /// once in ascending index order (the [`write_set`](Self::write_set)
    /// discipline). Returns how many believed pairs were actually
    /// removed. This is the control-plane half of cache feedback:
    /// eviction reports batch into one call per report, not one lock
    /// acquisition per target.
    pub fn remove_stale(&self, node: NodeId, stale: &[TargetId]) -> u64 {
        if stale.is_empty() {
            return 0;
        }
        self.write_set(stale, |set| {
            let mut removed = 0;
            for &t in stale {
                let m = set.table_mut(t);
                if m.is_mapped(t, node) {
                    m.remove_replica(t, node);
                    removed += 1;
                }
            }
            removed
        })
    }

    /// Write-locks every shard covering `targets` — each distinct shard
    /// exactly **once**, in ascending shard-index order — and runs `f`
    /// with the locked set. This is the batched-dispatch primitive: a
    /// pipelined batch of `N` requests costs one acquisition per
    /// *distinct shard* instead of one (or two) per request.
    ///
    /// Ascending index order is the workspace's multi-shard lock order;
    /// every code path that holds more than one mapping shard at a time
    /// must acquire in this order (see ARCHITECTURE.md, "Batched
    /// dispatch"), which makes cross-batch deadlock impossible — and
    /// which lockcheck enforces (the `MappingShard` group is
    /// index-ordered: non-ascending acquisition panics).
    #[track_caller]
    pub fn write_set<R>(
        &self,
        targets: &[TargetId],
        f: impl FnOnce(&mut ShardSetMut<'_>) -> R,
    ) -> R {
        let mut indices: Vec<usize> = targets
            .iter()
            .map(|t| spread(t.0 as u64, self.mask))
            .collect();
        indices.sort_unstable();
        indices.dedup();
        let guards: Vec<(usize, RwLockWriteGuard<'_, MappingTable>)> = indices
            .into_iter()
            .map(|i| (i, self.shards[i].write()))
            .collect();
        let mut set = ShardSetMut {
            guards,
            mask: self.mask,
        };
        f(&mut set)
    }
}

/// A set of exclusively locked mapping shards, acquired together by
/// [`ShardedMappingTable::write_set`] for one pipelined batch.
pub struct ShardSetMut<'a> {
    /// (shard index, guard), sorted ascending by index.
    guards: Vec<(usize, RwLockWriteGuard<'a, MappingTable>)>,
    mask: usize,
}

impl ShardSetMut<'_> {
    /// Number of distinct shards locked for this batch.
    pub fn num_locked(&self) -> usize {
        self.guards.len()
    }

    /// The locked table covering `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` hashes to a shard outside the locked set
    /// (i.e. it was not in the `targets` slice passed to
    /// [`ShardedMappingTable::write_set`]).
    pub fn table_mut(&mut self, target: TargetId) -> &mut MappingTable {
        let idx = spread(target.0 as u64, self.mask);
        let pos = self
            .guards
            .binary_search_by_key(&idx, |(i, _)| *i)
            .expect("target outside the locked shard set");
        &mut self.guards[pos].1
    }
}

/// Per-connection dispatcher state.
#[derive(Debug, Clone)]
pub(crate) struct ConnState {
    /// Connection-handling node (changes under migrate semantics).
    pub node: NodeId,
    /// Size of the current pipelined batch (the paper's `N`).
    pub batch_n: usize,
    /// Fixed-point loads charged to remote nodes for the current batch.
    pub frac: Vec<(NodeId, i64)>,
}

/// Connection-state table behind `N` independent locks keyed by
/// connection id.
#[derive(Debug)]
pub(crate) struct ConnTable {
    shards: Box<[Mutex<HashMap<ConnId, ConnState>>]>,
    mask: usize,
}

impl ConnTable {
    pub fn new(shards: usize) -> Self {
        let n = shard_count(shards);
        ConnTable {
            shards: (0..n)
                .map(|i| Mutex::new_classed(LockClass::conn_shard(i as u32), HashMap::new()))
                .collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, conn: ConnId) -> &Mutex<HashMap<ConnId, ConnState>> {
        &self.shards[spread(conn.0, self.mask)]
    }

    /// Runs `f` with exclusive access to `conn`'s shard map.
    #[track_caller]
    pub fn with<R>(&self, conn: ConnId, f: impl FnOnce(&mut HashMap<ConnId, ConnState>) -> R) -> R {
        f(&mut self.shard(conn).lock())
    }

    /// Number of tracked connections (sums shard sizes; a racy but
    /// monotone-consistent diagnostic).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_mapping_aggregates_across_shards() {
        let m = ShardedMappingTable::new(8);
        for i in 0..100u32 {
            m.write(TargetId(i), |t| t.add_replica(TargetId(i), NodeId(0)));
        }
        m.write(TargetId(5), |t| t.add_replica(TargetId(5), NodeId(1)));
        assert_eq!(m.num_targets(), 100);
        assert_eq!(m.num_replicas(), 101);
        assert!((m.replication_factor() - 1.01).abs() < 1e-9);
        assert!(m.is_mapped(TargetId(5), NodeId(1)));
        assert_eq!(m.nodes(TargetId(5)), vec![NodeId(0), NodeId(1)]);
        m.evict_node(NodeId(0));
        assert_eq!(m.num_targets(), 1);
    }

    #[test]
    fn shard_count_rounds_up() {
        assert_eq!(ShardedMappingTable::new(1).num_shards(), 1);
        assert_eq!(ShardedMappingTable::new(5).num_shards(), 8);
        assert_eq!(ShardedMappingTable::new(32).num_shards(), 32);
    }

    #[test]
    fn write_set_locks_each_shard_once_and_resolves_targets() {
        let m = ShardedMappingTable::new(4);
        let targets: Vec<TargetId> = (0..32).map(TargetId).collect();
        m.write_set(&targets, |set| {
            // 32 targets over 4 shards: every shard is locked, once.
            assert_eq!(set.num_locked(), 4);
            for &t in &targets {
                set.table_mut(t).add_replica(t, NodeId(1));
            }
        });
        assert_eq!(m.num_targets(), 32);
        for &t in &targets {
            assert!(m.is_mapped(t, NodeId(1)));
        }
        // Duplicate targets collapse to one shard lock.
        m.write_set(&[TargetId(5), TargetId(5)], |set| {
            assert_eq!(set.num_locked(), 1);
        });
    }

    #[test]
    #[should_panic(expected = "outside the locked shard set")]
    fn write_set_rejects_unlocked_targets() {
        let m = ShardedMappingTable::new(64);
        // With 64 shards, two targets that hash to different shards exist;
        // find one outside the singleton set.
        let outside = (1..1000)
            .map(TargetId)
            .find(|t| spread(t.0 as u64, m.mask) != spread(0, m.mask))
            .unwrap();
        m.write_set(&[TargetId(0)], |set| {
            let _ = set.table_mut(outside);
        });
    }

    #[test]
    fn conn_table_tracks_inserts_and_removes() {
        let c = ConnTable::new(4);
        for i in 0..50 {
            c.with(ConnId(i), |m| {
                m.insert(
                    ConnId(i),
                    ConnState {
                        node: NodeId(0),
                        batch_n: 1,
                        frac: Vec::new(),
                    },
                )
            });
        }
        assert_eq!(c.len(), 50);
        for i in 0..50 {
            c.with(ConnId(i), |m| m.remove(&ConnId(i)));
        }
        assert_eq!(c.len(), 0);
    }
}
