//! Lock-free per-node load accounting.
//!
//! The paper's front-end charges one load unit per active connection to
//! the connection-handling node, plus `1/N` of a unit to a remote node
//! serving one request of a pipelined batch of `N`. The tracker stores
//! these charges in **fixed point** ([`LOAD_UNIT`] = one connection) in
//! per-node atomics, so the dispatch hot path reads and writes load
//! without taking any lock — the whole point of splitting the old
//! monolithic `Dispatcher`, whose single mutex serialized every policy
//! decision across connection-handler threads.
//!
//! Exactness: a fractional batch charge is rounded once when computed
//! ([`LoadTracker::frac_charge`]) and the *same* fixed-point value is
//! recorded in the connection state and subtracted on discharge, so
//! load always returns to exactly zero when all connections close,
//! regardless of rounding.
//!
//! Disk-queue depths (conveyed over the control sessions, §7.1) live
//! here too: they are part of the same "cluster load state" snapshot
//! that policies read.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use crate::types::NodeId;

/// Fixed-point scale: one connection's worth of load.
///
/// 2^20 gives ~1e-6 resolution on fractional batch charges while
/// leaving 43 bits of whole-connection headroom.
pub const LOAD_UNIT: i64 = 1 << 20;

/// One node's counters, padded and aligned to a cache line so that the
/// dispatch hot path's relaxed stores to one node never invalidate the
/// line holding another node's counters (false sharing). The load and
/// disk-queue counters of the *same* node share a line deliberately —
/// policies read them together in one decision.
#[repr(align(64))]
#[derive(Debug)]
struct NodeCounters {
    load: AtomicI64,
    disk_q: AtomicUsize,
    /// Load other front-ends of the tier report for this node (fixed
    /// point, gossiped on the control plane). Zero outside a tier, so
    /// single-front-end behaviour is unchanged.
    remote: AtomicI64,
    /// Relative serving capacity (dimensionless, default 1). Policies
    /// compare *effective* load — raw load divided by this weight — so
    /// a weight-2 node looks half as busy per connection and naturally
    /// attracts proportionally more traffic in a heterogeneous cluster.
    weight: AtomicI64,
}

impl NodeCounters {
    fn new() -> Self {
        NodeCounters {
            load: AtomicI64::new(0),
            disk_q: AtomicUsize::new(0),
            remote: AtomicI64::new(0),
            weight: AtomicI64::new(1),
        }
    }
}

/// Per-node load estimates and disk-queue depths, all atomic, one cache
/// line per node.
#[derive(Debug)]
pub struct LoadTracker {
    nodes: Box<[NodeCounters]>,
}

impl LoadTracker {
    /// Creates a tracker for `num_nodes` back-ends, all idle.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one back-end");
        LoadTracker {
            nodes: (0..num_nodes).map(|_| NodeCounters::new()).collect(),
        }
    }

    /// Number of tracked nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// One node's load in connection units, including any remote bias
    /// gossiped by tier peers (zero outside a tier).
    pub fn load(&self, node: NodeId) -> f64 {
        self.load_fixed(node) as f64 / LOAD_UNIT as f64
    }

    /// One node's load in fixed point (local charges plus remote bias).
    pub fn load_fixed(&self, node: NodeId) -> i64 {
        let c = &self.nodes[node.0];
        c.load.load(Ordering::Relaxed) + c.remote.load(Ordering::Relaxed)
    }

    /// One node's **locally charged** load only, in fixed point — the
    /// part this front-end is accountable for, and the part it exports
    /// to tier peers (exporting the merged figure would double-count).
    pub fn local_fixed(&self, node: NodeId) -> i64 {
        self.nodes[node.0].load.load(Ordering::Relaxed)
    }

    /// Overwrites the remote-bias component for `node` with the latest
    /// merged peer figure. An overwrite, not an accumulate: each gossip
    /// round replaces the previous round's belief wholesale, so lost or
    /// duplicated rounds cannot drift the bias.
    pub fn set_remote_fixed(&self, node: NodeId, fixed: i64) {
        self.nodes[node.0].remote.store(fixed, Ordering::Relaxed);
    }

    /// Sets a node's relative capacity weight (heterogeneous clusters).
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0` — a zero-capacity member should be kept
    /// out of rotation by the health gate, not by a division blow-up.
    pub fn set_weight(&self, node: NodeId, weight: u32) {
        assert!(weight > 0, "node weight must be at least 1");
        self.nodes[node.0]
            .weight
            .store(weight as i64, Ordering::Relaxed);
    }

    /// A node's relative capacity weight (1 unless configured).
    pub fn weight(&self, node: NodeId) -> u32 {
        self.nodes[node.0].weight.load(Ordering::Relaxed) as u32
    }

    /// Capacity-normalized load in fixed point: [`load_fixed`]
    /// (local + remote bias) divided by the node's weight. This is the
    /// figure policies compare when picking the least-loaded node.
    ///
    /// [`load_fixed`]: Self::load_fixed
    pub fn effective_fixed(&self, node: NodeId) -> i64 {
        self.load_fixed(node) / self.nodes[node.0].weight.load(Ordering::Relaxed)
    }

    /// Capacity-normalized load in connection units.
    pub fn effective(&self, node: NodeId) -> f64 {
        self.load(node) / self.nodes[node.0].weight.load(Ordering::Relaxed) as f64
    }

    /// Snapshot of every node's load in connection units.
    pub fn loads(&self) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|i| self.load(NodeId(i)))
            .collect()
    }

    /// Adds a fixed-point charge to a node.
    pub fn charge(&self, node: NodeId, fixed: i64) {
        self.nodes[node.0].load.fetch_add(fixed, Ordering::Relaxed);
    }

    /// Removes a fixed-point charge from a node.
    pub fn discharge(&self, node: NodeId, fixed: i64) {
        self.nodes[node.0].load.fetch_sub(fixed, Ordering::Relaxed);
    }

    /// The fixed-point charge for one request of a pipelined batch of
    /// `batch_n` (the paper's `1/N` accounting). Record the returned
    /// value and discharge exactly it.
    pub fn frac_charge(batch_n: usize) -> i64 {
        debug_assert!(batch_n > 0);
        LOAD_UNIT / batch_n as i64
    }

    /// Overwrites a node's load (test setup only).
    pub fn set_load_for_tests(&self, node: NodeId, load: f64) {
        self.nodes[node.0]
            .load
            .store((load * LOAD_UNIT as f64) as i64, Ordering::Relaxed);
    }

    /// Records a back-end's disk queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_disk_queue(&self, node: NodeId, depth: usize) {
        self.nodes[node.0].disk_q.store(depth, Ordering::Relaxed);
    }

    /// A back-end's last reported disk queue depth.
    pub fn disk_queue(&self, node: NodeId) -> usize {
        self.nodes[node.0].disk_q.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_cancel_exactly() {
        let t = LoadTracker::new(2);
        t.charge(NodeId(0), LOAD_UNIT);
        let f3 = LoadTracker::frac_charge(3);
        t.charge(NodeId(1), f3);
        t.charge(NodeId(1), f3);
        assert!((t.load(NodeId(0)) - 1.0).abs() < 1e-9);
        assert!((t.load(NodeId(1)) - 2.0 / 3.0).abs() < 1e-5);
        t.discharge(NodeId(0), LOAD_UNIT);
        t.discharge(NodeId(1), f3);
        t.discharge(NodeId(1), f3);
        assert_eq!(t.load_fixed(NodeId(0)), 0);
        assert_eq!(t.load_fixed(NodeId(1)), 0);
    }

    #[test]
    fn concurrent_charges_conserve() {
        use std::sync::Arc;
        let t = Arc::new(LoadTracker::new(4));
        let handles: Vec<_> = (0..8)
            .map(|k| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let n = NodeId(((i + k) % 4) as usize);
                        t.charge(n, LOAD_UNIT);
                        t.discharge(n, LOAD_UNIT);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(t.load_fixed(NodeId(i)), 0);
        }
    }

    #[test]
    fn remote_bias_adds_to_reads_but_not_local_accounting() {
        let t = LoadTracker::new(2);
        t.charge(NodeId(0), LOAD_UNIT);
        t.set_remote_fixed(NodeId(0), 2 * LOAD_UNIT);
        assert!((t.load(NodeId(0)) - 3.0).abs() < 1e-9);
        assert_eq!(t.load_fixed(NodeId(0)), 3 * LOAD_UNIT);
        assert_eq!(t.local_fixed(NodeId(0)), LOAD_UNIT);
        // Replacement semantics: a new round overwrites, never adds.
        t.set_remote_fixed(NodeId(0), LOAD_UNIT / 2);
        assert_eq!(t.load_fixed(NodeId(0)), LOAD_UNIT + LOAD_UNIT / 2);
        t.set_remote_fixed(NodeId(0), 0);
        t.discharge(NodeId(0), LOAD_UNIT);
        assert_eq!(t.load_fixed(NodeId(0)), 0);
    }

    #[test]
    fn disk_queue_roundtrip() {
        let t = LoadTracker::new(2);
        t.set_disk_queue(NodeId(1), 17);
        assert_eq!(t.disk_queue(NodeId(1)), 17);
        assert_eq!(t.disk_queue(NodeId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one back-end")]
    fn zero_nodes_panics() {
        let _ = LoadTracker::new(0);
    }

    #[test]
    fn weights_normalize_effective_load() {
        let t = LoadTracker::new(2);
        assert_eq!(t.weight(NodeId(0)), 1);
        t.charge(NodeId(0), 4 * LOAD_UNIT);
        t.charge(NodeId(1), 4 * LOAD_UNIT);
        t.set_weight(NodeId(1), 4);
        // Raw loads are equal; effective load favours the big node.
        assert_eq!(t.load_fixed(NodeId(0)), t.load_fixed(NodeId(1)));
        assert_eq!(t.effective_fixed(NodeId(0)), 4 * LOAD_UNIT);
        assert_eq!(t.effective_fixed(NodeId(1)), LOAD_UNIT);
        assert!((t.effective(NodeId(1)) - 1.0).abs() < 1e-9);
        // Remote bias is normalized too (it is part of load_fixed).
        t.set_remote_fixed(NodeId(1), 4 * LOAD_UNIT);
        assert_eq!(t.effective_fixed(NodeId(1)), 2 * LOAD_UNIT);
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_panics() {
        let t = LoadTracker::new(1);
        t.set_weight(NodeId(0), 0);
    }

    #[test]
    fn node_counters_occupy_whole_cache_lines() {
        // Neighbouring nodes' counters must never share a 64-byte line;
        // alignment alone is not enough if the size were smaller.
        assert_eq!(std::mem::align_of::<NodeCounters>(), 64);
        assert_eq!(std::mem::size_of::<NodeCounters>(), 64);
    }
}
