//! The policy layer: pure request-distribution decisions.
//!
//! A [`Policy`] turns *cluster state* (per-node loads and disk queues
//! from the [`LoadTracker`], the target's current mapping set) into a
//! *decision* (which node, plus a [`MapEffect`] the caller applies to
//! the mapping table). Policies mutate neither loads nor mappings —
//! that separation is what lets the concurrent dispatcher run decisions
//! under nothing but the one mapping shard lock for the target in hand,
//! while the single-threaded façade composes the very same objects.
//!
//! The three policies mirror the paper:
//!
//! * [`Wrr`] — weighted round-robin, content-blind (the commercial
//!   front-end baseline);
//! * [`Lard`] — basic LARD (ASPLOS '98), connection-granularity;
//! * [`ExtLard`] — the paper's extended LARD for persistent
//!   connections, request-granularity (§4.2 rules).

use std::sync::atomic::{AtomicUsize, Ordering};

use phttp_trace::TargetId;

use crate::cost::{aggregate_cost, LardParams};
use crate::load::LoadTracker;
use crate::types::{Assignment, NodeId};

/// Which distribution policy the dispatcher runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Weighted round-robin: pure load-based, content-blind (the baseline
    /// used by the commercial front-ends the paper cites).
    Wrr,
    /// Basic LARD (ASPLOS '98), distributing at connection granularity.
    Lard,
    /// Extended LARD (this paper), distributing at request granularity.
    ExtLard,
}

impl PolicyKind {
    /// Short name used in figure legends, matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Wrr => "WRR",
            PolicyKind::Lard => "LARD",
            PolicyKind::ExtLard => "extLARD",
        }
    }

    /// Builds the policy implementation for this kind.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Wrr => Box::new(Wrr::new()),
            PolicyKind::Lard => Box::new(Lard),
            PolicyKind::ExtLard => Box::new(ExtLard),
        }
    }
}

/// What a [`Assignment::Remote`] decision means mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardSemantics {
    /// Back-end forwarding: the connection stays put; the connection node
    /// fetches the response laterally. Remote nodes get 1/N batch load.
    LateralFetch,
    /// Multiple handoff: the connection (and its load unit) migrates to the
    /// remote node, which becomes the new connection-handling node.
    Migrate,
}

/// Mapping-table update a decision implies. The caller applies it to
/// the decision's chosen/serving node under the same mapping lock the
/// decision was made under, keeping per-target decisions atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapEffect {
    /// No mapping change.
    None,
    /// Re-home the target exclusively onto the chosen node (basic-LARD
    /// partition move).
    AssignExclusive,
    /// Add the chosen/serving node to the target's replica set
    /// (extended-LARD replication).
    AddReplica,
}

/// A request-distribution policy: decision logic only, no state.
///
/// `target_nodes` is the target's current mapping set (insertion
/// order preserved); loads and disk queues are read through the
/// tracker's atomics. Implementations must be [`Send`] + [`Sync`]:
/// the concurrent dispatcher calls them from many threads at once.
pub trait Policy: Send + Sync {
    /// Which kind this policy is.
    fn kind(&self) -> PolicyKind;

    /// Whether [`Policy::pick_node`] reads or updates the mapping
    /// (lets the dispatcher skip the mapping lock for WRR).
    fn pick_uses_mapping(&self) -> bool {
        true
    }

    /// Whether [`Policy::assign`] reads or updates the mapping.
    fn assign_uses_mapping(&self) -> bool {
        false
    }

    /// Picks the connection-handling node for a new connection's first
    /// request. The returned [`MapEffect`] applies to the chosen node.
    fn pick_node(
        &self,
        loads: &LoadTracker,
        params: &LardParams,
        target: TargetId,
        target_nodes: &[NodeId],
    ) -> (NodeId, MapEffect);

    /// Assigns a subsequent request on a persistent connection. The
    /// returned [`MapEffect`] applies to the serving node (the remote
    /// node for `Assignment::Remote`, the connection node otherwise).
    fn assign(
        &self,
        loads: &LoadTracker,
        params: &LardParams,
        conn_node: NodeId,
        target: TargetId,
        target_nodes: &[NodeId],
    ) -> (Assignment, MapEffect);
}

/// Weighted round-robin: least-loaded node, ties broken round-robin so
/// equal-load nodes share work (the "weight" is the inverse of current
/// load). The rotating cursor is the policy's only state; it is an
/// atomic because it is a tie-breaker, not an invariant — a racy
/// advance costs nothing but a different (equally valid) tie-break.
#[derive(Debug, Default)]
pub struct Wrr {
    cursor: AtomicUsize,
}

impl Wrr {
    /// A fresh WRR policy with the cursor at node 0.
    pub fn new() -> Self {
        Wrr::default()
    }
}

impl Policy for Wrr {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Wrr
    }

    fn pick_uses_mapping(&self) -> bool {
        false
    }

    fn pick_node(
        &self,
        loads: &LoadTracker,
        _params: &LardParams,
        _target: TargetId,
        _target_nodes: &[NodeId],
    ) -> (NodeId, MapEffect) {
        let n = loads.num_nodes();
        let cursor = self.cursor.load(Ordering::Relaxed);
        let mut best = NodeId(cursor % n);
        let mut best_load = loads.effective_fixed(best);
        for i in 0..n {
            let cand = NodeId((cursor + i) % n);
            let load = loads.effective_fixed(cand);
            if load < best_load {
                best = cand;
                best_load = load;
            }
        }
        self.cursor.store((best.0 + 1) % n, Ordering::Relaxed);
        (best, MapEffect::None)
    }

    fn assign(
        &self,
        _loads: &LoadTracker,
        _params: &LardParams,
        _conn_node: NodeId,
        _target: TargetId,
        _target_nodes: &[NodeId],
    ) -> (Assignment, MapEffect) {
        // Connection granularity: requests never move.
        (Assignment::Local, MapEffect::None)
    }
}

/// Shared LARD first-request pick: argmin of the aggregate cost over
/// all nodes, ties broken toward lower load then lower index for
/// determinism. Loads are capacity-normalized
/// ([`LoadTracker::effective`]) so heavier-weight nodes attract
/// proportionally more targets in a heterogeneous cluster.
fn lard_pick(
    loads: &LoadTracker,
    params: &LardParams,
    target_nodes: &[NodeId],
) -> (NodeId, MapEffect) {
    let mut best = NodeId(0);
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for i in 0..loads.num_nodes() {
        let node = NodeId(i);
        let load = loads.effective(node);
        let mapped = target_nodes.contains(&node);
        let cost = aggregate_cost(load, mapped, params);
        let key = (cost, load);
        if key < best_key {
            best_key = key;
            best = node;
        }
    }
    let effect = if target_nodes.contains(&best) {
        MapEffect::None
    } else {
        // Basic LARD partitions: a move re-homes the target. Extended
        // LARD tolerates replication (its caching heuristic prunes it);
        // a first-request assignment still re-homes, as in basic LARD,
        // keeping the two equivalent on HTTP/1.0.
        MapEffect::AssignExclusive
    };
    (best, effect)
}

/// Basic LARD (ASPLOS '98): content-aware first-request pick, requests
/// never move within a connection.
#[derive(Debug, Default)]
pub struct Lard;

impl Policy for Lard {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lard
    }

    fn pick_node(
        &self,
        loads: &LoadTracker,
        params: &LardParams,
        _target: TargetId,
        target_nodes: &[NodeId],
    ) -> (NodeId, MapEffect) {
        lard_pick(loads, params, target_nodes)
    }

    fn assign(
        &self,
        _loads: &LoadTracker,
        _params: &LardParams,
        _conn_node: NodeId,
        _target: TargetId,
        _target_nodes: &[NodeId],
    ) -> (Assignment, MapEffect) {
        (Assignment::Local, MapEffect::None)
    }
}

/// Extended LARD (this paper): request-granularity distribution on
/// persistent connections, with the §4.2 serve-local / forward rules.
#[derive(Debug, Default)]
pub struct ExtLard;

impl Policy for ExtLard {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ExtLard
    }

    fn assign_uses_mapping(&self) -> bool {
        true
    }

    fn pick_node(
        &self,
        loads: &LoadTracker,
        params: &LardParams,
        _target: TargetId,
        target_nodes: &[NodeId],
    ) -> (NodeId, MapEffect) {
        lard_pick(loads, params, target_nodes)
    }

    fn assign(
        &self,
        loads: &LoadTracker,
        params: &LardParams,
        conn_node: NodeId,
        _target: TargetId,
        target_nodes: &[NodeId],
    ) -> (Assignment, MapEffect) {
        // Rule 1: cached at the connection node -> serve locally.
        if target_nodes.contains(&conn_node) {
            return (Assignment::Local, MapEffect::None);
        }
        // Rule 1b: low disk utilization -> read from local disk, avoiding
        // forwarding overhead, and cache it (add a replica mapping).
        if loads.disk_queue(conn_node) < params.disk_queue_low {
            return (Assignment::Local, MapEffect::AddReplica);
        }
        // First-ever fetch of this target: no node caches it, so the
        // connection node reads it from disk. "Mappings ... are updated
        // each time a target is fetched from a backend node" — recording
        // the first mapping is not replication, so the anti-thrashing
        // heuristic does not apply. Without this, targets that only ever
        // appear as subsequent requests (embedded objects) would never
        // converge onto a home node.
        if target_nodes.is_empty() {
            return (Assignment::Local, MapEffect::AddReplica);
        }
        // Rule 2: evaluate cost metrics over the connection node and the
        // nodes currently caching the target (or, under the ablation knob,
        // every node). Capacity-normalized loads throughout.
        let conn_load = loads.effective(conn_node);
        let mut best = conn_node;
        let mut best_key = (
            // Not mapped to the conn node (rule 1 would have fired).
            aggregate_cost(conn_load, false, params),
            conn_load,
        );
        let all_nodes: Vec<NodeId>;
        let candidates: &[NodeId] = if params.restrict_candidates {
            target_nodes
        } else {
            all_nodes = (0..loads.num_nodes()).map(NodeId).collect();
            &all_nodes
        };
        for &cand in candidates {
            if cand == conn_node {
                continue;
            }
            let load = loads.effective(cand);
            let mapped = target_nodes.contains(&cand);
            let cost = aggregate_cost(load, mapped, params);
            let key = (cost, load);
            if key < best_key {
                best_key = key;
                best = cand;
            }
        }
        if best == conn_node {
            // Serving locally from disk under high disk utilization: the
            // anti-thrashing heuristic says do NOT cache (no mapping added).
            (Assignment::Local, MapEffect::None)
        } else {
            // The serving node will end up caching the target (it reads it
            // from its disk if it no longer has it); record that.
            (Assignment::Remote(best), MapEffect::AddReplica)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    #[test]
    fn wrr_rotates_ties_and_prefers_light_nodes() {
        let loads = LoadTracker::new(3);
        let p = Wrr::new();
        let params = LardParams::default();
        // All idle: cursor rotation spreads picks evenly.
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                let (n, e) = p.pick_node(&loads, &params, t(0), &[]);
                assert_eq!(e, MapEffect::None);
                loads.charge(n, crate::load::LOAD_UNIT);
                n.0
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Unload node 1: it must win the next pick.
        loads.discharge(NodeId(1), 2 * crate::load::LOAD_UNIT);
        let (n, _) = p.pick_node(&loads, &params, t(0), &[]);
        assert_eq!(n, NodeId(1));
    }

    #[test]
    fn weights_bias_picks_toward_big_nodes() {
        // Equal raw load, but node 1 has 4x the capacity: both WRR and
        // the LARD pick must prefer it.
        let loads = LoadTracker::new(2);
        loads.set_weight(NodeId(1), 4);
        loads.set_load_for_tests(NodeId(0), 8.0);
        loads.set_load_for_tests(NodeId(1), 8.0);
        let params = LardParams::default();
        let wrr = Wrr::new();
        let (n, _) = wrr.pick_node(&loads, &params, t(0), &[]);
        assert_eq!(n, NodeId(1));
        let lard = Lard;
        let (n, _) = lard.pick_node(&loads, &params, t(0), &[]);
        assert_eq!(n, NodeId(1));
        // ExtLard rule 2: the weighted node wins the forwarding argmin
        // even at a higher raw load than an unweighted alternative.
        let loads = LoadTracker::new(3);
        loads.set_weight(NodeId(2), 4);
        loads.set_disk_queue(NodeId(0), 50); // busy disk at the conn node
        loads.set_load_for_tests(NodeId(1), 8.0);
        loads.set_load_for_tests(NodeId(2), 16.0);
        let p = ExtLard;
        let (a, _) = p.assign(&loads, &params, NodeId(0), t(1), &[NodeId(1), NodeId(2)]);
        assert_eq!(a, Assignment::Remote(NodeId(2)));
    }

    #[test]
    fn lard_sticks_until_overloaded_then_rehomes() {
        let loads = LoadTracker::new(2);
        let p = Lard;
        let params = LardParams::default();
        let (first, e) = p.pick_node(&loads, &params, t(1), &[]);
        assert_eq!(e, MapEffect::AssignExclusive);
        // Mapped and lightly loaded: stays.
        loads.set_load_for_tests(first, 30.0);
        let (again, e) = p.pick_node(&loads, &params, t(1), &[first]);
        assert_eq!(again, first);
        assert_eq!(e, MapEffect::None);
        // Past T_high: moves off (and re-homes).
        loads.set_load_for_tests(first, 66.0);
        let (moved, e) = p.pick_node(&loads, &params, t(1), &[first]);
        assert_ne!(moved, first);
        assert_eq!(e, MapEffect::AssignExclusive);
    }

    #[test]
    fn ext_lard_rule_order() {
        let loads = LoadTracker::new(2);
        let p = ExtLard;
        let params = LardParams::default();
        let conn = NodeId(0);
        let other = NodeId(1);
        // Rule 1: mapped locally.
        assert_eq!(
            p.assign(&loads, &params, conn, t(1), &[conn]),
            (Assignment::Local, MapEffect::None)
        );
        // Rule 1b: idle disk caches locally.
        assert_eq!(
            p.assign(&loads, &params, conn, t(1), &[other]),
            (Assignment::Local, MapEffect::AddReplica)
        );
        // Busy disk + mapped elsewhere: forwards to the caching node.
        loads.set_disk_queue(conn, 50);
        assert_eq!(
            p.assign(&loads, &params, conn, t(1), &[other]),
            (Assignment::Remote(other), MapEffect::AddReplica)
        );
        // Busy disk + unknown target: first fetch maps locally.
        assert_eq!(
            p.assign(&loads, &params, conn, t(2), &[]),
            (Assignment::Local, MapEffect::AddReplica)
        );
        // Busy disk + caching node overloaded: local, no replica.
        loads.set_load_for_tests(other, 200.0);
        assert_eq!(
            p.assign(&loads, &params, conn, t(1), &[other]),
            (Assignment::Local, MapEffect::None)
        );
    }
}
