//! Content-based request distribution for cluster-based Web servers.
//!
//! This crate is the primary contribution of the reproduced paper —
//! *Efficient Support for P-HTTP in Cluster-Based Web Servers* (Aron,
//! Druschel, Zwaenepoel; USENIX 1999) — as a reusable library, organized
//! as three composable layers plus two façades:
//!
//! * the **policy layer** ([`policy`]): a [`Policy`] trait with
//!   weighted round-robin ([`policy::Wrr`]), basic LARD
//!   ([`policy::Lard`]), and the paper's extended LARD
//!   ([`policy::ExtLard`]) as pure decision logic over the LARD
//!   **cost metrics** ([`cost`], the paper's Figure 4);
//! * the **load layer** ([`load`]): per-node atomic fixed-point load
//!   counters, including the 1/N pipelined-batch accounting;
//! * the **mapping layer** ([`mapping`], [`shard`]): the front-end
//!   table that partitions (and, under extended LARD, selectively
//!   replicates) the working set, behind per-target lock shards;
//! * the **feedback layer** ([`feedback`]): control-plane cache
//!   reports from the back-ends ([`feedback::CacheEvent`] streams) that
//!   keep the mapping *belief* coherent with real cache contents, plus
//!   the divergence metric that quantifies the gap;
//! * the **health layer** ([`health`]): a per-node circuit breaker
//!   ([`HealthGate`], Closed/Open/HalfOpen with probationary traffic)
//!   that sits between every policy decision and the assignment it
//!   becomes, so a failed or still-warming node never wins a pick;
//! * the [`Dispatcher`] façade: the original single-threaded API,
//!   driving the trace-driven simulator (`phttp-sim`);
//! * the [`ConcurrentDispatcher`] façade: the same semantics behind
//!   `&self`, whose hot path takes only the one mapping shard and one
//!   connection shard it touches — the live prototype (`phttp-proto`)
//!   runs its connection-handler threads against this with no global
//!   lock, keeping the front-end's decision path off the critical
//!   path exactly as the paper's scalability argument requires;
//! * the **mechanism** taxonomy ([`mechanism`]): relaying front-end, TCP
//!   single/multiple handoff, back-end forwarding, and the zero-cost ideal;
//! * the **tier layer** ([`tier`]): the consistent-hash [`Ring`]
//!   partitioning target ownership across multiple front-ends, and the
//!   serializable, commutatively mergeable dispatcher state
//!   ([`DispatcherSnapshot`], [`StateDelta`], [`TierView`]) those
//!   front-ends gossip on the control plane.
//!
//! See `ARCHITECTURE.md` at the repo root for the layering rationale and
//! which façade each crate consumes. Every public item in this crate is
//! documented and the crate denies `missing_docs` — it is the API other
//! crates (and the paper-reading reader) navigate first.
//!
//! # Examples
//!
//! ```
//! use phttp_core::{ConnId, Dispatcher, ForwardSemantics, LardParams, PolicyKind};
//! use phttp_trace::TargetId;
//!
//! // A 4-node cluster running extended LARD with back-end forwarding.
//! let mut d = Dispatcher::new(
//!     PolicyKind::ExtLard,
//!     ForwardSemantics::LateralFetch,
//!     4,
//!     LardParams::default(),
//! );
//! // First request of a persistent connection chooses the handling node...
//! let node = d.open_connection(ConnId(1), TargetId(10));
//! // ...and a later pipelined batch of two requests is assigned per-request.
//! d.begin_batch(ConnId(1), 2);
//! let a = d.assign_request(ConnId(1), TargetId(11));
//! let b = d.assign_request(ConnId(1), TargetId(12));
//! assert_eq!(a.serving_node(node), node); // disk idle: served locally
//! assert_eq!(b.serving_node(node), node);
//! d.close_connection(ConnId(1));
//! assert!(d.loads().iter().all(|&l| l == 0.0));
//! ```
//!
//! The concurrent façade has the same surface behind `&self`:
//!
//! ```
//! use std::sync::Arc;
//! use phttp_core::{
//!     ConcurrentDispatcher, ConnId, ForwardSemantics, LardParams, PolicyKind,
//! };
//! use phttp_trace::TargetId;
//!
//! let d = Arc::new(ConcurrentDispatcher::new(
//!     PolicyKind::ExtLard,
//!     ForwardSemantics::LateralFetch,
//!     4,
//!     LardParams::default(),
//! ));
//! let handles: Vec<_> = (0..4)
//!     .map(|k| {
//!         let d = d.clone();
//!         std::thread::spawn(move || {
//!             let conn = ConnId(k);
//!             d.open_connection(conn, TargetId(k as u32));
//!             d.close_connection(conn);
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(d.active_connections(), 0);
//! assert!(d.loads().iter().all(|&l| l == 0.0));
//! ```

#![deny(missing_docs)]

pub mod concurrent;
pub mod cost;
pub mod costmodel;
pub mod dispatcher;
pub mod feedback;
pub mod health;
pub mod load;
pub mod mapping;
pub mod mechanism;
pub mod policy;
pub mod shard;
pub mod tier;
pub mod types;

pub use concurrent::{ConcurrentDispatcher, DispatcherConfig};
pub use cost::{aggregate_cost, cost_balancing, cost_locality, cost_replacement, LardParams};
pub use costmodel::{MechanismCosts, ServerCosts};
pub use dispatcher::Dispatcher;
pub use feedback::{CacheEvent, CacheMirror, CoherenceSnapshot, CoherenceStats};
pub use health::{HealthConfig, HealthGate, HealthState};
pub use load::{LoadTracker, LOAD_UNIT};
pub use mapping::MappingTable;
pub use mechanism::Mechanism;
pub use policy::{ForwardSemantics, MapEffect, Policy, PolicyKind};
pub use shard::{ShardSetMut, ShardedMappingTable};
pub use tier::{DispatcherSnapshot, FeId, MergeOutcome, Ring, StateDelta, TierView};
pub use types::{Assignment, ConnId, NodeId};
