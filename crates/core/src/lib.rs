//! Content-based request distribution for cluster-based Web servers.
//!
//! This crate is the primary contribution of the reproduced paper —
//! *Efficient Support for P-HTTP in Cluster-Based Web Servers* (Aron,
//! Druschel, Zwaenepoel; USENIX 1999) — as a reusable library:
//!
//! * the LARD **cost metrics** ([`cost`], the paper's Figure 4);
//! * the front-end **mapping table** ([`mapping`]) that partitions (and,
//!   under extended LARD, selectively replicates) the working set;
//! * the **dispatcher** ([`dispatcher`]) implementing weighted round-robin,
//!   basic LARD, and the paper's extended LARD for HTTP/1.1 persistent
//!   connections, including the 1/N pipelined-batch load accounting;
//! * the **mechanism** taxonomy ([`mechanism`]): relaying front-end, TCP
//!   single/multiple handoff, back-end forwarding, and the zero-cost ideal.
//!
//! The same dispatcher drives both the trace-driven simulator (`phttp-sim`)
//! and the live loopback prototype (`phttp-proto`), mirroring the paper
//! where one dispatcher design is studied in simulation and implemented in
//! a FreeBSD kernel module.
//!
//! # Examples
//!
//! ```
//! use phttp_core::{ConnId, Dispatcher, ForwardSemantics, LardParams, PolicyKind};
//! use phttp_trace::TargetId;
//!
//! // A 4-node cluster running extended LARD with back-end forwarding.
//! let mut d = Dispatcher::new(
//!     PolicyKind::ExtLard,
//!     ForwardSemantics::LateralFetch,
//!     4,
//!     LardParams::default(),
//! );
//! // First request of a persistent connection chooses the handling node...
//! let node = d.open_connection(ConnId(1), TargetId(10));
//! // ...and a later pipelined batch of two requests is assigned per-request.
//! d.begin_batch(ConnId(1), 2);
//! let a = d.assign_request(ConnId(1), TargetId(11));
//! let b = d.assign_request(ConnId(1), TargetId(12));
//! assert_eq!(a.serving_node(node), node); // disk idle: served locally
//! assert_eq!(b.serving_node(node), node);
//! d.close_connection(ConnId(1));
//! assert!(d.loads().iter().all(|&l| l == 0.0));
//! ```

pub mod cost;
pub mod costmodel;
pub mod dispatcher;
pub mod mapping;
pub mod mechanism;
pub mod types;

pub use cost::{aggregate_cost, cost_balancing, cost_locality, cost_replacement, LardParams};
pub use costmodel::{MechanismCosts, ServerCosts};
pub use dispatcher::{Dispatcher, ForwardSemantics, PolicyKind};
pub use mapping::MappingTable;
pub use mechanism::Mechanism;
pub use types::{Assignment, ConnId, NodeId};
