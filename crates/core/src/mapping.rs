//! The front-end's target-to-node mapping table.
//!
//! LARD "maintains mappings between targets and back-end nodes such that a
//! target is considered to be cached on its associated back-end nodes". The
//! table is the front-end's *belief* about cache contents — the real caches
//! (simulated LRU or prototype file cache) may disagree after evictions,
//! which is part of the behaviour being studied.
//!
//! Basic LARD keeps at most one node per target (it partitions the working
//! set). Extended LARD can *replicate*: serving a target locally on a
//! lightly-loaded connection-handling node adds that node to the target's
//! set (the paper's point 3 trade-off: replication reduces forwarding but
//! shrinks the aggregate effective cache).

use std::collections::HashMap;

use phttp_trace::TargetId;

use crate::types::NodeId;

/// Target → set-of-nodes mapping with small inline sets.
#[derive(Debug, Clone, Default)]
pub struct MappingTable {
    map: HashMap<TargetId, Vec<NodeId>>,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `target` is mapped to `node`.
    pub fn is_mapped(&self, target: TargetId, node: NodeId) -> bool {
        self.map
            .get(&target)
            .is_some_and(|nodes| nodes.contains(&node))
    }

    /// Returns the nodes believed to cache `target` (possibly empty).
    pub fn nodes(&self, target: TargetId) -> &[NodeId] {
        self.map.get(&target).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if the target has any mapping.
    pub fn is_known(&self, target: TargetId) -> bool {
        self.map.get(&target).is_some_and(|v| !v.is_empty())
    }

    /// Replaces the target's mapping with exactly `node` (basic-LARD move:
    /// the working-set partition assigns each target to one node).
    pub fn assign_exclusive(&mut self, target: TargetId, node: NodeId) {
        let entry = self.map.entry(target).or_default();
        entry.clear();
        entry.push(node);
    }

    /// Adds `node` to the target's set if absent (extended-LARD replication).
    pub fn add_replica(&mut self, target: TargetId, node: NodeId) {
        let entry = self.map.entry(target).or_default();
        if !entry.contains(&node) {
            entry.push(node);
        }
    }

    /// Replaces the target's mapping wholesale with `nodes`
    /// (deduplicated, order preserved); an empty set removes the entry.
    /// This is the tier-adoption primitive: a front-end materializing a
    /// peer's gossiped share installs the owner's belief verbatim
    /// rather than patching its own.
    pub fn set_nodes(&mut self, target: TargetId, nodes: &[NodeId]) {
        if nodes.is_empty() {
            self.map.remove(&target);
            return;
        }
        let entry = self.map.entry(target).or_default();
        entry.clear();
        for &n in nodes {
            if !entry.contains(&n) {
                entry.push(n);
            }
        }
    }

    /// Removes `node` from the target's set (e.g. on node failure).
    pub fn remove_replica(&mut self, target: TargetId, node: NodeId) {
        if let Some(entry) = self.map.get_mut(&target) {
            entry.retain(|&n| n != node);
            if entry.is_empty() {
                self.map.remove(&target);
            }
        }
    }

    /// Visits every believed `(target, node)` pair (divergence audits,
    /// coherence metrics). Iteration order is unspecified.
    pub fn for_each_pair(&self, mut f: impl FnMut(TargetId, NodeId)) {
        for (&target, nodes) in &self.map {
            for &node in nodes {
                f(target, node);
            }
        }
    }

    /// Drops every mapping that references `node` (node decommissioning).
    pub fn evict_node(&mut self, node: NodeId) {
        self.map.retain(|_, nodes| {
            nodes.retain(|&n| n != node);
            !nodes.is_empty()
        });
    }

    /// Number of targets with at least one mapping.
    pub fn num_targets(&self) -> usize {
        self.map.len()
    }

    /// Total number of (target, node) pairs — `>= num_targets()`; the excess
    /// measures replication.
    pub fn num_replicas(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Mean replicas per mapped target (1.0 = pure partitioning).
    pub fn replication_factor(&self) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        self.num_replicas() as f64 / self.num_targets() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    #[test]
    fn exclusive_assignment_replaces() {
        let mut m = MappingTable::new();
        m.assign_exclusive(t(1), NodeId(0));
        assert!(m.is_mapped(t(1), NodeId(0)));
        m.assign_exclusive(t(1), NodeId(2));
        assert!(!m.is_mapped(t(1), NodeId(0)));
        assert!(m.is_mapped(t(1), NodeId(2)));
        assert_eq!(m.nodes(t(1)), &[NodeId(2)]);
    }

    #[test]
    fn replicas_accumulate_without_duplicates() {
        let mut m = MappingTable::new();
        m.add_replica(t(5), NodeId(0));
        m.add_replica(t(5), NodeId(1));
        m.add_replica(t(5), NodeId(1));
        assert_eq!(m.nodes(t(5)).len(), 2);
        assert_eq!(m.num_replicas(), 2);
        assert_eq!(m.num_targets(), 1);
        assert!((m.replication_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn remove_replica_cleans_up() {
        let mut m = MappingTable::new();
        m.add_replica(t(1), NodeId(0));
        m.remove_replica(t(1), NodeId(0));
        assert!(!m.is_known(t(1)));
        assert_eq!(m.num_targets(), 0);
        // Removing from an unknown target is a no-op.
        m.remove_replica(t(9), NodeId(3));
    }

    #[test]
    fn set_nodes_replaces_dedupes_and_clears() {
        let mut m = MappingTable::new();
        m.add_replica(t(1), NodeId(0));
        m.set_nodes(t(1), &[NodeId(2), NodeId(1), NodeId(2)]);
        assert_eq!(m.nodes(t(1)), &[NodeId(2), NodeId(1)]);
        m.set_nodes(t(1), &[]);
        assert!(!m.is_known(t(1)));
        assert_eq!(m.num_targets(), 0);
    }

    #[test]
    fn evict_node_strips_all_mappings() {
        let mut m = MappingTable::new();
        m.add_replica(t(1), NodeId(0));
        m.add_replica(t(1), NodeId(1));
        m.add_replica(t(2), NodeId(0));
        m.evict_node(NodeId(0));
        assert_eq!(m.nodes(t(1)), &[NodeId(1)]);
        assert!(!m.is_known(t(2)));
    }

    #[test]
    fn unknown_target_reports_empty() {
        let m = MappingTable::new();
        assert!(!m.is_mapped(t(3), NodeId(0)));
        assert!(m.nodes(t(3)).is_empty());
        assert_eq!(m.replication_factor(), 0.0);
    }
}
