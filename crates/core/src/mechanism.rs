//! The request-distribution mechanisms of the paper's §3, as a descriptor
//! type shared by the simulator, the prototype, and the figure harness.
//!
//! The *mechanism* is how a chosen back-end gets to serve a request on a
//! front-end-established client connection; the *policy*
//! ([`crate::dispatcher::PolicyKind`]) is how the back-end is chosen. The
//! paper evaluates five mechanisms:

use std::fmt;

/// A client-transparent request-distribution mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// The front-end relays request and response bytes both ways over
    /// per-back-end persistent connections. Simple, distributes at request
    /// granularity, but every response byte crosses the front-end.
    RelayingFrontend,
    /// TCP single handoff (ASPLOS '98): the connection is handed to one
    /// back-end once; responses bypass the front-end; every request on the
    /// connection is served by that back-end.
    SingleHandoff,
    /// TCP multiple handoff: the connection can migrate between back-ends,
    /// enabling request-granularity distribution at a per-migration cost.
    MultipleHandoff,
    /// Back-end request forwarding (this paper's implemented mechanism):
    /// single handoff plus lateral fetch — the connection-handling node
    /// requests the content from the node that caches it and forwards the
    /// response on its client connection.
    BackendForwarding,
    /// An idealized mechanism that reassigns connections at zero cost; a
    /// ceiling for what any practical mechanism can achieve (the paper's
    /// `zeroCost` configuration).
    ZeroCost,
}

impl Mechanism {
    /// All mechanisms, in the order the paper introduces them.
    pub const ALL: [Mechanism; 5] = [
        Mechanism::RelayingFrontend,
        Mechanism::SingleHandoff,
        Mechanism::MultipleHandoff,
        Mechanism::BackendForwarding,
        Mechanism::ZeroCost,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::RelayingFrontend => "relay",
            Mechanism::SingleHandoff => "simple",
            Mechanism::MultipleHandoff => "multiHandoff",
            Mechanism::BackendForwarding => "BEforward",
            Mechanism::ZeroCost => "zeroCost",
        }
    }

    /// Whether the mechanism can serve different requests of one persistent
    /// connection on different nodes.
    pub fn supports_request_granularity(self) -> bool {
        !matches!(self, Mechanism::SingleHandoff)
    }

    /// Whether response bytes flow through the front-end.
    pub fn responses_cross_frontend(self) -> bool {
        matches!(self, Mechanism::RelayingFrontend)
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Mechanism::BackendForwarding.to_string(), "BEforward");
        assert_eq!(Mechanism::MultipleHandoff.to_string(), "multiHandoff");
        assert_eq!(Mechanism::ZeroCost.to_string(), "zeroCost");
    }

    #[test]
    fn granularity_classification() {
        assert!(!Mechanism::SingleHandoff.supports_request_granularity());
        assert!(Mechanism::BackendForwarding.supports_request_granularity());
        assert!(Mechanism::MultipleHandoff.supports_request_granularity());
        assert!(Mechanism::RelayingFrontend.supports_request_granularity());
    }

    #[test]
    fn only_relaying_routes_responses_through_frontend() {
        for m in Mechanism::ALL {
            assert_eq!(
                m.responses_cross_frontend(),
                m == Mechanism::RelayingFrontend
            );
        }
    }
}
