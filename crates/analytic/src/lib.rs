//! Closed-form performance model of the request-distribution mechanisms —
//! the analysis behind Figures 5 and 6 of *Efficient Support for P-HTTP in
//! Cluster-Based Web Servers* (Aron et al., USENIX 1999).
//!
//! The paper's §5 predicts cluster bandwidth as a function of the average
//! response size under a **pessimal policy assumption**: every request after
//! the first on a persistent connection must be served by a back-end other
//! than the connection-handling node. This isolates the mechanisms' inherent
//! trade-off — a per-request *handoff* overhead (multiple handoff) versus a
//! per-byte *forwarding* overhead (back-end forwarding) — and gives an upper
//! bound on how much the mechanism choice can matter.
//!
//! The model counts CPU microseconds only (the paper's testbed network was
//! assumed not to be the bottleneck) and assumes all content is served from
//! memory: the mechanisms differ in CPU cost, not disk behaviour.
//!
//! # Examples
//!
//! ```
//! use phttp_analytic::{AnalyticModel, MechanismKind};
//!
//! let model = AnalyticModel::apache(4);
//! let small = 2 * 1024;
//! let large = 64 * 1024;
//! // Back-end forwarding wins on small responses...
//! assert!(
//!     model.bandwidth_mbps(MechanismKind::BackendForwarding, small)
//!         > model.bandwidth_mbps(MechanismKind::MultipleHandoff, small)
//! );
//! // ...and multiple handoff wins on large ones.
//! assert!(
//!     model.bandwidth_mbps(MechanismKind::MultipleHandoff, large)
//!         > model.bandwidth_mbps(MechanismKind::BackendForwarding, large)
//! );
//! // The crossover falls in between.
//! let cross = model.crossover_bytes().unwrap();
//! assert!(small < cross && cross < large);
//! ```

use phttp_core::costmodel::{MechanismCosts, ServerCosts};
use serde::{Deserialize, Serialize};

/// The two mechanisms the paper's analysis compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// TCP multiple handoff: per-reassignment CPU cost, direct transmit.
    MultipleHandoff,
    /// Back-end forwarding: lateral fetch, response crosses the conn node.
    BackendForwarding,
}

/// The analytic model: cluster shape plus cost profiles.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// Back-end server software costs.
    pub server: ServerCosts,
    /// Mechanism costs.
    pub mech: MechanismCosts,
    /// Number of back-end nodes (the paper's figures use 4).
    pub nodes: usize,
    /// Average number of requests per persistent connection. The paper notes
    /// the results are "nearly independent" of this; 8 is a web-like default.
    pub requests_per_conn: u64,
}

impl AnalyticModel {
    /// The paper's Figure 5 configuration: 4 nodes, Apache costs.
    pub fn apache(nodes: usize) -> Self {
        AnalyticModel {
            server: ServerCosts::apache(),
            mech: MechanismCosts::apache(),
            nodes,
            requests_per_conn: 8,
        }
    }

    /// The paper's Figure 6 configuration: 4 nodes, Flash costs.
    pub fn flash(nodes: usize) -> Self {
        AnalyticModel {
            server: ServerCosts::flash(),
            mech: MechanismCosts::flash(),
            nodes,
            requests_per_conn: 8,
        }
    }

    /// Total back-end CPU microseconds consumed by one connection whose
    /// every response is `bytes` long, under the pessimal assumption.
    pub fn backend_us_per_conn(&self, kind: MechanismKind, bytes: u64) -> u64 {
        let s = &self.server;
        let m = &self.mech;
        let k = self.requests_per_conn;
        // Connection setup at the handling node: handoff + establish, and
        // teardown at close.
        let conn_fixed = m.be_handoff_us + s.conn_establish_us + s.conn_teardown_us;
        // First request: served at the connection node.
        let first = s.per_request_us + s.xmit_us(bytes);
        // Requests 2..k: always moved (pessimal).
        let moved = match kind {
            MechanismKind::MultipleHandoff => {
                // Migration work on both back-ends, then normal service.
                m.be_migrate_out_us + m.be_migrate_in_us + s.per_request_us + s.xmit_us(bytes)
            }
            MechanismKind::BackendForwarding => {
                // Remote node serves; conn node issues the lateral request
                // and re-sends the response to the client.
                s.per_request_us + s.xmit_us(bytes) + m.fwd_us(bytes)
            }
        };
        conn_fixed + first + moved * (k - 1)
    }

    /// Front-end CPU microseconds per connection.
    pub fn frontend_us_per_conn(&self, kind: MechanismKind, _bytes: u64) -> u64 {
        let m = &self.mech;
        let k = self.requests_per_conn;
        let per_moved = match kind {
            MechanismKind::MultipleHandoff => m.fe_req_us + m.fe_migrate_us,
            MechanismKind::BackendForwarding => m.fe_req_us,
        };
        m.fe_conn_us + per_moved * (k - 1)
    }

    /// Sustainable connection rate (connections/second): the binding
    /// resource among the N back-end CPUs and the front-end CPU.
    pub fn conn_rate(&self, kind: MechanismKind, bytes: u64) -> f64 {
        let be = self.backend_us_per_conn(kind, bytes) as f64;
        let fe = self.frontend_us_per_conn(kind, bytes) as f64;
        let be_rate = self.nodes as f64 * 1e6 / be;
        let fe_rate = 1e6 / fe;
        be_rate.min(fe_rate)
    }

    /// Request throughput, requests/second.
    pub fn throughput_rps(&self, kind: MechanismKind, bytes: u64) -> f64 {
        self.conn_rate(kind, bytes) * self.requests_per_conn as f64
    }

    /// Delivered bandwidth in megabits per second — the paper's y-axis.
    pub fn bandwidth_mbps(&self, kind: MechanismKind, bytes: u64) -> f64 {
        self.throughput_rps(kind, bytes) * bytes as f64 * 8.0 / 1e6
    }

    /// Response size at which the two mechanisms' bandwidths cross, found by
    /// bisection over [64 B, 1 MB]. Returns `None` if there is no crossover
    /// in that range (one mechanism dominates everywhere).
    pub fn crossover_bytes(&self) -> Option<u64> {
        let f = |z: u64| {
            self.bandwidth_mbps(MechanismKind::BackendForwarding, z)
                - self.bandwidth_mbps(MechanismKind::MultipleHandoff, z)
        };
        let (mut lo, mut hi) = (64u64, 1 << 20);
        let (flo, fhi) = (f(lo), f(hi));
        if flo.signum() == fhi.signum() {
            return None;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if f(mid).signum() == flo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Generates one figure row per size: `(bytes, BEforward Mb/s,
    /// multiHandoff Mb/s)`, for sizes from `from` to `to` in `steps` even
    /// steps — the series plotted in Figures 5 and 6.
    pub fn series(&self, from: u64, to: u64, steps: usize) -> Vec<(u64, f64, f64)> {
        assert!(steps >= 2 && to > from);
        (0..steps)
            .map(|i| {
                let z = from + (to - from) * i as u64 / (steps as u64 - 1);
                (
                    z,
                    self.bandwidth_mbps(MechanismKind::BackendForwarding, z),
                    self.bandwidth_mbps(MechanismKind::MultipleHandoff, z),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_in_web_range_for_apache() {
        let m = AnalyticModel::apache(4);
        let cross = m.crossover_bytes().expect("crossover must exist");
        // DESIGN.md calibration: ≈13 KB for Apache.
        let kb = cross as f64 / 1024.0;
        assert!((10.0..=16.0).contains(&kb), "Apache crossover {kb:.1} KB");
    }

    #[test]
    fn flash_crossover_is_smaller() {
        let a = AnalyticModel::apache(4).crossover_bytes().unwrap();
        let f = AnalyticModel::flash(4).crossover_bytes().unwrap();
        assert!(f < a, "Flash crossover {f} must be below Apache's {a}");
    }

    #[test]
    fn bandwidth_is_monotone_in_size_for_both() {
        // Larger files amortize fixed costs: bandwidth rises with size.
        let m = AnalyticModel::apache(4);
        for kind in [
            MechanismKind::MultipleHandoff,
            MechanismKind::BackendForwarding,
        ] {
            let mut last = 0.0;
            for z in (1..=20).map(|i| i * 5 * 1024) {
                let bw = m.bandwidth_mbps(kind, z as u64);
                assert!(bw > last, "bandwidth must rise with size");
                last = bw;
            }
        }
    }

    #[test]
    fn throughput_falls_with_size() {
        let m = AnalyticModel::apache(4);
        assert!(
            m.throughput_rps(MechanismKind::BackendForwarding, 1024)
                > m.throughput_rps(MechanismKind::BackendForwarding, 100 * 1024)
        );
    }

    #[test]
    fn flash_outperforms_apache_at_every_size() {
        let a = AnalyticModel::apache(4);
        let f = AnalyticModel::flash(4);
        for z in [1024u64, 8 * 1024, 64 * 1024] {
            assert!(
                f.bandwidth_mbps(MechanismKind::MultipleHandoff, z)
                    > a.bandwidth_mbps(MechanismKind::MultipleHandoff, z)
            );
        }
    }

    #[test]
    fn nearly_independent_of_requests_per_conn() {
        // The paper: "These results are nearly independent of the average
        // number of requests received on a persistent connection."
        let mut short = AnalyticModel::apache(4);
        short.requests_per_conn = 4;
        let mut long = AnalyticModel::apache(4);
        long.requests_per_conn = 32;
        let (a, b) = (
            short.crossover_bytes().unwrap() as f64,
            long.crossover_bytes().unwrap() as f64,
        );
        assert!(
            (a - b).abs() / a < 0.15,
            "crossover moved too much with k: {a} vs {b}"
        );
    }

    #[test]
    fn series_covers_requested_range() {
        let m = AnalyticModel::flash(4);
        let s = m.series(1024, 100 * 1024, 25);
        assert_eq!(s.len(), 25);
        assert_eq!(s[0].0, 1024);
        assert_eq!(s[24].0, 100 * 1024);
        assert!(s.iter().all(|&(_, bw_f, bw_m)| bw_f > 0.0 && bw_m > 0.0));
    }

    #[test]
    fn scaling_nodes_scales_backend_bound_bandwidth() {
        let m4 = AnalyticModel::apache(4);
        let m8 = AnalyticModel::apache(8);
        let z = 16 * 1024;
        let r = m8.bandwidth_mbps(MechanismKind::MultipleHandoff, z)
            / m4.bandwidth_mbps(MechanismKind::MultipleHandoff, z);
        // Back-end bound at this size: doubling nodes ~doubles bandwidth
        // (until the front-end binds).
        assert!(r > 1.8, "scaling ratio {r:.2}");
    }
}
