//! Property-based tests for the analytic model: the qualitative structure
//! of §5 must hold across the whole (sane) parameter space, not just the
//! Apache/Flash presets.

use proptest::prelude::*;

use phttp_analytic::{AnalyticModel, MechanismKind};
use phttp_core::costmodel::{MechanismCosts, ServerCosts};

fn arb_model() -> impl Strategy<Value = AnalyticModel> {
    (
        20u64..400, // conn establish/teardown
        20u64..800, // per-request
        5u64..80,   // xmit per 512
        50u64..500, // migrate parts
        20u64..200, // lateral
        5u64..60,   // fwd per 512
        2usize..12, // nodes
        2u64..32,   // requests per conn
    )
        .prop_map(|(conn, req, xmit, mig, lat, fwd, nodes, k)| AnalyticModel {
            server: ServerCosts {
                conn_establish_us: conn,
                conn_teardown_us: conn,
                per_request_us: req,
                xmit_per_512_us: xmit,
            },
            mech: MechanismCosts {
                fe_conn_us: 120,
                fe_req_us: 60,
                fe_migrate_us: mig / 2,
                fe_relay_per_512_us: 20,
                be_handoff_us: 150,
                be_migrate_out_us: mig,
                be_migrate_in_us: mig,
                be_lateral_req_us: lat,
                be_fwd_per_512_us: fwd,
            },
            nodes,
            requests_per_conn: k,
        })
}

proptest! {
    /// Throughput falls and bandwidth rises with response size, for both
    /// mechanisms, under any parameterization.
    #[test]
    fn monotonicity(model in arb_model()) {
        for kind in [MechanismKind::MultipleHandoff, MechanismKind::BackendForwarding] {
            let mut last_tput = f64::INFINITY;
            let mut last_bw = 0.0;
            for z in [1u64, 4, 16, 64, 256].map(|k| k * 1024) {
                let tput = model.throughput_rps(kind, z);
                let bw = model.bandwidth_mbps(kind, z);
                prop_assert!(tput > 0.0 && tput.is_finite());
                prop_assert!(tput <= last_tput);
                prop_assert!(bw >= last_bw);
                last_tput = tput;
                last_bw = bw;
            }
        }
    }

    /// If a crossover exists, the ordering flips exactly there: back-end
    /// forwarding wins strictly below, multiple handoff at-or-above.
    #[test]
    fn crossover_separates_the_orderings(model in arb_model()) {
        if let Some(cross) = model.crossover_bytes() {
            let below = cross.saturating_sub(cross / 4).max(64);
            let above = cross + cross / 4;
            let diff_below = model.bandwidth_mbps(MechanismKind::BackendForwarding, below)
                - model.bandwidth_mbps(MechanismKind::MultipleHandoff, below);
            let diff_above = model.bandwidth_mbps(MechanismKind::BackendForwarding, above)
                - model.bandwidth_mbps(MechanismKind::MultipleHandoff, above);
            prop_assert!(diff_below.signum() != diff_above.signum()
                || diff_below.abs() < 1e-9 || diff_above.abs() < 1e-9,
                "no flip around crossover {cross}: {diff_below} vs {diff_above}");
        }
    }

    /// More back-ends never reduce throughput (the front-end can only cap it).
    #[test]
    fn nodes_help_or_cap(model in arb_model(), z in 1u64..64) {
        let z = z * 1024;
        let mut bigger = model;
        bigger.nodes = model.nodes + 2;
        for kind in [MechanismKind::MultipleHandoff, MechanismKind::BackendForwarding] {
            prop_assert!(bigger.throughput_rps(kind, z) >= model.throughput_rps(kind, z) * 0.999);
        }
    }

    /// Cheaper migration can only help multiple handoff.
    #[test]
    fn migration_cost_hurts_multihandoff(model in arb_model(), z in 1u64..64) {
        let z = z * 1024;
        let mut cheap = model;
        cheap.mech.be_migrate_out_us /= 2;
        cheap.mech.be_migrate_in_us /= 2;
        prop_assert!(
            cheap.throughput_rps(MechanismKind::MultipleHandoff, z)
                >= model.throughput_rps(MechanismKind::MultipleHandoff, z)
        );
        // And back-end forwarding is unaffected by migration pricing.
        let a = cheap.throughput_rps(MechanismKind::BackendForwarding, z);
        let b = model.throughput_rps(MechanismKind::BackendForwarding, z);
        prop_assert!((a - b).abs() < 1e-9);
    }
}
