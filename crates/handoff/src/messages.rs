//! Control-protocol message types.

use phttp_core::ConnId;

/// The TCP state a handoff transfers: enough for the receiving kernel to
/// reconstruct the connection endpoint and keep sequence numbers flowing
/// (the receiving node then masquerades as the front-end — "all packets
/// from the connection handling node appear to be coming from the
/// front-end", §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHandoffState {
    /// Client IPv4 address.
    pub client_ip: u32,
    /// Client TCP port.
    pub client_port: u16,
    /// The front-end's (server-side) port the client connected to.
    pub local_port: u16,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected from the client.
    pub rcv_nxt: u32,
    /// Current send window.
    pub snd_wnd: u16,
    /// Negotiated maximum segment size.
    pub mss: u16,
}

/// Messages on the front-end/back-end control sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Front-end → back-end: take over this client connection. Carries the
    /// TCP state and the already-read first request bytes (the dispatcher
    /// consumed them to make the content-based decision).
    HandoffRequest {
        /// Connection being handed off.
        conn: ConnId,
        /// Transferred TCP endpoint state.
        tcp: TcpHandoffState,
        /// Raw bytes of the first request.
        first_request: Vec<u8>,
    },
    /// Back-end → front-end: handoff outcome. On `accepted`, the front-end
    /// installs the forwarding route for the client's packets.
    HandoffAck {
        /// Connection the ack refers to.
        conn: ConnId,
        /// Whether the back-end took the connection.
        accepted: bool,
    },
    /// Front-end → back-end: a dispatcher-assigned (possibly tagged)
    /// subsequent request, delivered reliably over the control session and
    /// placed directly into the server's socket buffer (§7.3, Figure 10).
    TaggedRequest {
        /// Connection the request belongs to.
        conn: ConnId,
        /// Raw request bytes (URI possibly rewritten with a `/be_k/` tag).
        data: Vec<u8>,
    },
    /// Front-end → back-end: migrate this connection *in* (multiple
    /// handoff, §7.2's sketched extension).
    MigrateRequest {
        /// Connection being migrated.
        conn: ConnId,
        /// TCP state as transferred from the previous owner.
        tcp: TcpHandoffState,
    },
    /// Back-end → front-end: migration outcome; on `accepted` the
    /// front-end re-points the forwarding route.
    MigrateAck {
        /// Connection the ack refers to.
        conn: ConnId,
        /// Whether the new back-end took the connection.
        accepted: bool,
    },
    /// Back-end → front-end: the client connection finished; the forwarding
    /// route can be removed and the dispatcher's load updated.
    ConnClosed {
        /// Connection that closed.
        conn: ConnId,
    },
    /// Back-end → front-end: periodic disk queue depth (what extended
    /// LARD's disk-utilization heuristic reads, §7.1).
    DiskQueueReport {
        /// Number of queued disk events.
        depth: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_state_is_plain_data() {
        let a = TcpHandoffState {
            client_ip: 1,
            client_port: 2,
            local_port: 3,
            snd_nxt: 4,
            rcv_nxt: 5,
            snd_wnd: 6,
            mss: 7,
        };
        let b = a;
        assert_eq!(a, b);
    }

    #[test]
    fn messages_compare_structurally() {
        let m1 = CtrlMsg::ConnClosed { conn: ConnId(1) };
        let m2 = CtrlMsg::ConnClosed { conn: ConnId(1) };
        let m3 = CtrlMsg::ConnClosed { conn: ConnId(2) };
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
    }
}
