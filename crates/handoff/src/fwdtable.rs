//! The front-end's packet-forwarding table (the "forwarding module" of
//! §7.1/Figure 10).
//!
//! After a handoff, every packet the client sends still arrives at the
//! front-end (the cluster is one virtual server); the forwarding module
//! routes it to the connection-handling back-end "in an efficient manner",
//! and sends a *copy* of request-bearing packets up to the dispatcher so it
//! can assign subsequent requests. During a migration the route is in
//! flux: packets are buffered rather than dropped or misdelivered, which is
//! the paper's "keep the TCP pipeline from draining" requirement.

use std::collections::HashMap;

use phttp_core::NodeId;

/// A client endpoint (the connection key the kernel module hashes on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientKey {
    /// Client IPv4 address.
    pub ip: u32,
    /// Client TCP port.
    pub port: u16,
}

/// Where an incoming client packet goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteDecision {
    /// Forward to the connection-handling back-end; `copy_to_dispatcher`
    /// is set for request-bearing packets (the dispatcher needs them to
    /// assign subsequent requests).
    Forward {
        /// The owning back-end.
        node: NodeId,
        /// Whether a copy goes up to the dispatcher.
        copy_to_dispatcher: bool,
    },
    /// The connection is mid-migration: the packet was queued.
    Buffered,
    /// The connection is mid-migration but its buffer is at the byte
    /// cap: the packet was **dropped**, not queued. Safe for TCP
    /// payloads — the client retransmits — and the explicit overflow
    /// action that keeps a stalled migration from buffering without
    /// bound.
    Dropped,
    /// No route: not a handed-off connection (e.g. a brand-new SYN, which
    /// the listener path handles instead).
    Unrouted,
}

/// Default cap on bytes buffered per migrating connection. One window's
/// worth of a fast client; a migration outliving this is stalled, and
/// TCP retransmission recovers anything dropped past it.
pub const DEFAULT_BUFFER_CAP: usize = 256 * 1024;

#[derive(Debug)]
enum Entry {
    Active(NodeId),
    /// Migration in flight: buffered packet payloads in arrival order,
    /// plus their total byte size (enforces the cap without re-summing).
    Migrating(Vec<Vec<u8>>, usize),
}

/// The forwarding table.
#[derive(Debug)]
pub struct ForwardingTable {
    routes: HashMap<ClientKey, Entry>,
    buffer_cap: usize,
    forwarded: u64,
    buffered: u64,
    overflow_dropped: u64,
}

impl Default for ForwardingTable {
    fn default() -> Self {
        ForwardingTable {
            routes: HashMap::new(),
            buffer_cap: DEFAULT_BUFFER_CAP,
            forwarded: 0,
            buffered: 0,
            overflow_dropped: 0,
        }
    }
}

impl ForwardingTable {
    /// Creates an empty table with the [`DEFAULT_BUFFER_CAP`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-connection migration-buffer byte cap
    /// (`0` disables buffering entirely: every mid-migration packet is
    /// dropped and counted).
    pub fn with_buffer_cap(mut self, bytes: usize) -> Self {
        self.buffer_cap = bytes;
        self
    }

    /// Installs a route after a successful handoff.
    pub fn install(&mut self, key: ClientKey, node: NodeId) {
        self.routes.insert(key, Entry::Active(node));
    }

    /// Removes a route (connection closed). Returns any packets still
    /// buffered by an interrupted migration.
    pub fn remove(&mut self, key: ClientKey) -> Vec<Vec<u8>> {
        match self.routes.remove(&key) {
            Some(Entry::Migrating(buf, _)) => buf,
            _ => Vec::new(),
        }
    }

    /// Marks a connection as migrating: subsequent packets buffer until
    /// [`ForwardingTable::complete_migration`].
    ///
    /// Returns `false` if the key has no active route.
    pub fn begin_migration(&mut self, key: ClientKey) -> bool {
        match self.routes.get_mut(&key) {
            Some(e @ Entry::Active(_)) => {
                *e = Entry::Migrating(Vec::new(), 0);
                true
            }
            _ => false,
        }
    }

    /// Completes a migration: installs the new owner and returns the
    /// packets buffered while the route was in flux, in arrival order, so
    /// the caller can forward them to the new owner.
    pub fn complete_migration(&mut self, key: ClientKey, node: NodeId) -> Vec<Vec<u8>> {
        match self.routes.insert(key, Entry::Active(node)) {
            Some(Entry::Migrating(buf, _)) => buf,
            _ => Vec::new(),
        }
    }

    /// Aborts a migration, restoring the old owner; returns buffered
    /// packets for forwarding to that owner.
    pub fn abort_migration(&mut self, key: ClientKey, old: NodeId) -> Vec<Vec<u8>> {
        self.complete_migration(key, old)
    }

    /// Routes one client packet. `is_request` marks packets carrying
    /// request bytes (vs. pure ACKs).
    pub fn route(&mut self, key: ClientKey, payload: &[u8], is_request: bool) -> RouteDecision {
        match self.routes.get_mut(&key) {
            Some(Entry::Active(node)) => {
                self.forwarded += 1;
                RouteDecision::Forward {
                    node: *node,
                    copy_to_dispatcher: is_request,
                }
            }
            Some(Entry::Migrating(buf, bytes)) => {
                if *bytes + payload.len() > self.buffer_cap {
                    self.overflow_dropped += 1;
                    return RouteDecision::Dropped;
                }
                *bytes += payload.len();
                buf.push(payload.to_vec());
                self.buffered += 1;
                RouteDecision::Buffered
            }
            None => RouteDecision::Unrouted,
        }
    }

    /// Current owner of a route, if active.
    pub fn owner(&self, key: ClientKey) -> Option<NodeId> {
        match self.routes.get(&key) {
            Some(Entry::Active(n)) => Some(*n),
            _ => None,
        }
    }

    /// Number of installed routes (active + migrating).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets buffered during migrations so far.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Packets dropped because a migrating connection's buffer was at
    /// its byte cap.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16) -> ClientKey {
        ClientKey {
            ip: 0x0A000001,
            port: n,
        }
    }

    #[test]
    fn install_route_and_forward() {
        let mut t = ForwardingTable::new();
        t.install(key(1), NodeId(2));
        let d = t.route(key(1), b"ack", false);
        assert_eq!(
            d,
            RouteDecision::Forward {
                node: NodeId(2),
                copy_to_dispatcher: false
            }
        );
        let d = t.route(key(1), b"GET /", true);
        assert_eq!(
            d,
            RouteDecision::Forward {
                node: NodeId(2),
                copy_to_dispatcher: true
            }
        );
        assert_eq!(t.forwarded(), 2);
    }

    #[test]
    fn unknown_key_is_unrouted() {
        let mut t = ForwardingTable::new();
        assert_eq!(t.route(key(9), b"x", false), RouteDecision::Unrouted);
    }

    #[test]
    fn migration_buffers_and_replays_in_order() {
        let mut t = ForwardingTable::new();
        t.install(key(1), NodeId(0));
        assert!(t.begin_migration(key(1)));
        assert_eq!(t.route(key(1), b"p1", true), RouteDecision::Buffered);
        assert_eq!(t.route(key(1), b"p2", false), RouteDecision::Buffered);
        let replay = t.complete_migration(key(1), NodeId(3));
        assert_eq!(replay, vec![b"p1".to_vec(), b"p2".to_vec()]);
        assert_eq!(t.owner(key(1)), Some(NodeId(3)));
        // After completion, packets flow to the new owner.
        assert_eq!(
            t.route(key(1), b"p3", false),
            RouteDecision::Forward {
                node: NodeId(3),
                copy_to_dispatcher: false
            }
        );
    }

    #[test]
    fn abort_restores_old_owner_with_replay() {
        let mut t = ForwardingTable::new();
        t.install(key(1), NodeId(0));
        t.begin_migration(key(1));
        t.route(key(1), b"p", false);
        let replay = t.abort_migration(key(1), NodeId(0));
        assert_eq!(replay.len(), 1);
        assert_eq!(t.owner(key(1)), Some(NodeId(0)));
    }

    #[test]
    fn cannot_migrate_nonexistent_or_migrating_route() {
        let mut t = ForwardingTable::new();
        assert!(!t.begin_migration(key(1)));
        t.install(key(1), NodeId(0));
        assert!(t.begin_migration(key(1)));
        assert!(
            !t.begin_migration(key(1)),
            "double migration must be refused"
        );
    }

    #[test]
    fn migration_buffer_is_byte_capped_with_explicit_drops() {
        // Regression: the migration buffer used to grow without bound —
        // a stalled migration let one client pin arbitrary memory.
        let mut t = ForwardingTable::new().with_buffer_cap(8);
        t.install(key(1), NodeId(0));
        t.begin_migration(key(1));
        assert_eq!(t.route(key(1), b"12345", false), RouteDecision::Buffered);
        assert_eq!(t.route(key(1), b"678", false), RouteDecision::Buffered);
        // 8 bytes held: the cap is reached, further packets drop.
        assert_eq!(t.route(key(1), b"x", false), RouteDecision::Dropped);
        assert_eq!(t.route(key(1), b"yy", true), RouteDecision::Dropped);
        assert_eq!(t.overflow_dropped(), 2);
        assert_eq!(t.buffered(), 2);
        // Replay contains exactly the packets admitted under the cap.
        let replay = t.complete_migration(key(1), NodeId(1));
        assert_eq!(replay, vec![b"12345".to_vec(), b"678".to_vec()]);
        // Post-migration traffic forwards normally again.
        assert_eq!(
            t.route(key(1), b"after", false),
            RouteDecision::Forward {
                node: NodeId(1),
                copy_to_dispatcher: false
            }
        );
    }

    #[test]
    fn zero_cap_disables_buffering() {
        let mut t = ForwardingTable::new().with_buffer_cap(0);
        t.install(key(1), NodeId(0));
        t.begin_migration(key(1));
        assert_eq!(t.route(key(1), b"p", false), RouteDecision::Dropped);
        assert!(t.complete_migration(key(1), NodeId(1)).is_empty());
        assert_eq!(t.overflow_dropped(), 1);
    }

    #[test]
    fn remove_returns_stranded_buffer() {
        let mut t = ForwardingTable::new();
        t.install(key(1), NodeId(0));
        t.begin_migration(key(1));
        t.route(key(1), b"stranded", false);
        let buf = t.remove(key(1));
        assert_eq!(buf, vec![b"stranded".to_vec()]);
        assert!(t.is_empty());
    }
}
