//! Wire format of the handoff control protocol.
//!
//! The paper's front-end and back-end handoff modules communicate over
//! per-back-end *control sessions* ("the TCP single handoff protocol ...
//! runs over the standard TCP/IP to provide a control session between the
//! front-end and the back-end machine", §7.1). This module defines the
//! messages and a compact, versioned, length-prefixed binary encoding —
//! what the loadable kernel modules would put on those sessions.
//!
//! Framing: every message is `[len: u32][version: u8][type: u8][payload]`
//! with all integers big-endian. `len` counts everything after itself.

use std::fmt;

use crate::messages::{CtrlMsg, TcpHandoffState};

/// Protocol version byte; bump on incompatible changes.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one control message (tagged requests carry HTTP heads,
/// which the HTTP layer bounds at 16 KB).
pub const MAX_FRAME: usize = 64 * 1024;

/// Decode failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does (need more bytes).
    Truncated,
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown message type byte.
    BadType(u8),
    /// Frame length field exceeds [`MAX_FRAME`] or is impossibly small.
    BadLength(u32),
    /// Payload structure does not match the message type.
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::BadLength(l) => write!(f, "bad frame length {l}"),
            WireError::Malformed => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for WireError {}

const T_HANDOFF_REQ: u8 = 1;
const T_HANDOFF_ACK: u8 = 2;
const T_TAGGED_REQ: u8 = 3;
const T_MIGRATE_REQ: u8 = 4;
const T_MIGRATE_ACK: u8 = 5;
const T_CONN_CLOSED: u8 = 6;
const T_DISK_REPORT: u8 = 7;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_tcp(out: &mut Vec<u8>, t: &TcpHandoffState) {
    put_u32(out, t.client_ip);
    put_u16(out, t.client_port);
    put_u16(out, t.local_port);
    put_u32(out, t.snd_nxt);
    put_u32(out, t.rcv_nxt);
    put_u16(out, t.snd_wnd);
    put_u16(out, t.mss);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Malformed);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn tcp(&mut self) -> Result<TcpHandoffState, WireError> {
        Ok(TcpHandoffState {
            client_ip: self.u32()?,
            client_port: self.u16()?,
            local_port: self.u16()?,
            snd_nxt: self.u32()?,
            rcv_nxt: self.u32()?,
            snd_wnd: self.u16()?,
            mss: self.u16()?,
        })
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed)
        }
    }
}

/// Encodes one message, appending the frame to `out`.
pub fn encode(msg: &CtrlMsg, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // length placeholder
    out.push(WIRE_VERSION);
    match msg {
        CtrlMsg::HandoffRequest {
            conn,
            tcp,
            first_request,
        } => {
            out.push(T_HANDOFF_REQ);
            put_u64(out, conn.0);
            put_tcp(out, tcp);
            put_u32(out, first_request.len() as u32);
            out.extend_from_slice(first_request);
        }
        CtrlMsg::HandoffAck { conn, accepted } => {
            out.push(T_HANDOFF_ACK);
            put_u64(out, conn.0);
            out.push(u8::from(*accepted));
        }
        CtrlMsg::TaggedRequest { conn, data } => {
            out.push(T_TAGGED_REQ);
            put_u64(out, conn.0);
            put_u32(out, data.len() as u32);
            out.extend_from_slice(data);
        }
        CtrlMsg::MigrateRequest { conn, tcp } => {
            out.push(T_MIGRATE_REQ);
            put_u64(out, conn.0);
            put_tcp(out, tcp);
        }
        CtrlMsg::MigrateAck { conn, accepted } => {
            out.push(T_MIGRATE_ACK);
            put_u64(out, conn.0);
            out.push(u8::from(*accepted));
        }
        CtrlMsg::ConnClosed { conn } => {
            out.push(T_CONN_CLOSED);
            put_u64(out, conn.0);
        }
        CtrlMsg::DiskQueueReport { depth } => {
            out.push(T_DISK_REPORT);
            put_u32(out, *depth);
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

/// Decodes one message from the front of `buf`.
///
/// Returns the message and the number of bytes consumed, or
/// [`WireError::Truncated`] if the frame is incomplete (feed more bytes).
pub fn decode(buf: &[u8]) -> Result<(CtrlMsg, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
    if len < 2 || len as usize > MAX_FRAME {
        return Err(WireError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let frame = &buf[4..total];
    if frame[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(frame[0]));
    }
    let ty = frame[1];
    let mut r = Reader {
        buf: &frame[2..],
        pos: 0,
    };
    let msg = match ty {
        T_HANDOFF_REQ => {
            let conn = phttp_core::ConnId(r.u64()?);
            let tcp = r.tcp()?;
            let n = r.u32()? as usize;
            let first_request = r.take(n)?.to_vec();
            CtrlMsg::HandoffRequest {
                conn,
                tcp,
                first_request,
            }
        }
        T_HANDOFF_ACK => CtrlMsg::HandoffAck {
            conn: phttp_core::ConnId(r.u64()?),
            accepted: r.take(1)?[0] != 0,
        },
        T_TAGGED_REQ => {
            let conn = phttp_core::ConnId(r.u64()?);
            let n = r.u32()? as usize;
            CtrlMsg::TaggedRequest {
                conn,
                data: r.take(n)?.to_vec(),
            }
        }
        T_MIGRATE_REQ => CtrlMsg::MigrateRequest {
            conn: phttp_core::ConnId(r.u64()?),
            tcp: r.tcp()?,
        },
        T_MIGRATE_ACK => CtrlMsg::MigrateAck {
            conn: phttp_core::ConnId(r.u64()?),
            accepted: r.take(1)?[0] != 0,
        },
        T_CONN_CLOSED => CtrlMsg::ConnClosed {
            conn: phttp_core::ConnId(r.u64()?),
        },
        T_DISK_REPORT => CtrlMsg::DiskQueueReport { depth: r.u32()? },
        other => return Err(WireError::BadType(other)),
    };
    r.done()?;
    Ok((msg, total))
}

/// Incremental decoder over a byte stream (the control session socket).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete message, if any.
    // Pull semantics like `Iterator::next`, but fallible and non-blocking,
    // so the trait does not fit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<CtrlMsg>, WireError> {
        match decode(&self.buf) {
            Ok((msg, used)) => {
                self.buf.drain(..used);
                Ok(Some(msg))
            }
            Err(WireError::Truncated) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phttp_core::ConnId;

    fn sample_tcp() -> TcpHandoffState {
        TcpHandoffState {
            client_ip: 0x0A00_0001,
            client_port: 51234,
            local_port: 80,
            snd_nxt: 0xDEAD_BEEF,
            rcv_nxt: 0x1234_5678,
            snd_wnd: 65_000,
            mss: 1460,
        }
    }

    fn all_messages() -> Vec<CtrlMsg> {
        vec![
            CtrlMsg::HandoffRequest {
                conn: ConnId(7),
                tcp: sample_tcp(),
                first_request: b"GET /x HTTP/1.1\r\n\r\n".to_vec(),
            },
            CtrlMsg::HandoffAck {
                conn: ConnId(7),
                accepted: true,
            },
            CtrlMsg::TaggedRequest {
                conn: ConnId(7),
                data: b"GET /be_2/x HTTP/1.1\r\n\r\n".to_vec(),
            },
            CtrlMsg::MigrateRequest {
                conn: ConnId(7),
                tcp: sample_tcp(),
            },
            CtrlMsg::MigrateAck {
                conn: ConnId(7),
                accepted: false,
            },
            CtrlMsg::ConnClosed { conn: ConnId(7) },
            CtrlMsg::DiskQueueReport { depth: 42 },
        ]
    }

    #[test]
    fn roundtrip_every_message_type() {
        for msg in all_messages() {
            let mut wire = Vec::new();
            encode(&msg, &mut wire);
            let (back, used) = decode(&wire).unwrap();
            assert_eq!(back, msg);
            assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn streaming_decoder_handles_fragmentation() {
        let mut wire = Vec::new();
        for msg in all_messages() {
            encode(&msg, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            dec.feed(chunk);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, all_messages());
    }

    #[test]
    fn truncated_frames_wait_for_more() {
        let mut wire = Vec::new();
        encode(&CtrlMsg::ConnClosed { conn: ConnId(1) }, &mut wire);
        for cut in 0..wire.len() {
            assert_eq!(decode(&wire[..cut]), Err(WireError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn bad_version_and_type_are_rejected() {
        let mut wire = Vec::new();
        encode(&CtrlMsg::ConnClosed { conn: ConnId(1) }, &mut wire);
        let mut bad_ver = wire.clone();
        bad_ver[4] = 99;
        assert_eq!(decode(&bad_ver), Err(WireError::BadVersion(99)));
        let mut bad_type = wire.clone();
        bad_type[5] = 200;
        assert_eq!(decode(&bad_type), Err(WireError::BadType(200)));
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut wire = vec![0xFF, 0xFF, 0xFF, 0xFF];
        wire.extend_from_slice(&[WIRE_VERSION, T_CONN_CLOSED]);
        assert!(matches!(decode(&wire), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trailing_garbage_in_payload_is_malformed() {
        let mut wire = Vec::new();
        encode(&CtrlMsg::ConnClosed { conn: ConnId(1) }, &mut wire);
        // Grow the payload without updating the type's expected size.
        let len = wire.len() - 4 + 1;
        wire.push(0xAB);
        wire[..4].copy_from_slice(&(len as u32).to_be_bytes());
        assert_eq!(decode(&wire), Err(WireError::Malformed));
    }
}
