//! The TCP handoff control protocol of the paper's §7, as a reusable,
//! sans-io protocol implementation.
//!
//! The paper realizes handoff inside FreeBSD loadable kernel modules; this
//! crate reproduces the *protocol* those modules speak, independent of any
//! kernel:
//!
//! * [`messages`] — the control-session message set (handoff request/ack,
//!   tagged requests, migration for the §7.2 multiple-handoff extension,
//!   close notifications, disk-queue reports) and the TCP state a handoff
//!   transfers;
//! * [`wire`] — a compact, versioned, length-prefixed binary encoding with
//!   an incremental frame decoder;
//! * [`fwdtable`] — the front-end's packet-forwarding table, including the
//!   buffer-during-migration behaviour that keeps the TCP pipeline from
//!   draining;
//! * [`machine`] — sans-io front-end and back-end state machines that
//!   consume events and emit [`machine::Action`]s for the host to execute.
//!
//! The live prototype (`phttp-proto`) realizes the same decision flow with
//! in-process shortcuts (DESIGN.md §6.2/§6.4); this crate is the faithful
//! wire-level rendering for hosts that need real distribution — and it is
//! where a kernel (or `TCP_REPAIR`-based) transport would plug in.
//!
//! # Examples
//!
//! ```
//! use phttp_core::{ConnId, NodeId};
//! use phttp_handoff::fwdtable::ClientKey;
//! use phttp_handoff::machine::{Action, BeHandoff, FeHandoff};
//! use phttp_handoff::messages::TcpHandoffState;
//!
//! let mut fe = FeHandoff::new();
//! let mut be = BeHandoff::new(NodeId(0), 0);
//! let tcp = TcpHandoffState {
//!     client_ip: 0x0A00_0001, client_port: 40000, local_port: 80,
//!     snd_nxt: 1, rcv_nxt: 1, snd_wnd: 65535, mss: 1460,
//! };
//! let conn = ConnId(1);
//! let client = ClientKey { ip: tcp.client_ip, port: tcp.client_port };
//! // FE hands the connection (and the first request) to back-end 0...
//! let actions = fe.start_handoff(conn, client, NodeId(0), tcp, b"GET / HTTP/1.1\r\n\r\n".to_vec());
//! let Action::SendCtrl { msg, .. } = &actions[0] else { unreachable!() };
//! // ...the back-end accepts...
//! let ack = be.on_ctrl(msg.clone()).unwrap();
//! fe.on_ctrl(NodeId(0), ack).unwrap();
//! // ...and client packets now route to it.
//! let acts = fe.on_client_packet(client, b"GET /next HTTP/1.1\r\n\r\n", true);
//! assert!(matches!(acts[0], Action::ForwardPackets { to: NodeId(0), .. }));
//! ```

pub mod fwdtable;
pub mod machine;
pub mod messages;
pub mod wire;

pub use fwdtable::{ClientKey, ForwardingTable, RouteDecision};
pub use machine::{Action, BeHandoff, FeHandoff};
pub use messages::{CtrlMsg, TcpHandoffState};
pub use wire::{FrameDecoder, WireError};
