//! Front-end and back-end handoff state machines.
//!
//! These are sans-io: they consume control messages and emit
//! [`Action`]s; the host (kernel module, or our prototype/simulator) owns
//! sockets and timers. That makes every protocol path unit-testable,
//! including the migration races the paper warns about ("one of the main
//! challenges in this design is to prevent the TCP pipeline from draining
//! during the process of a handoff", §7.2).

use std::collections::HashMap;

use phttp_core::{ConnId, NodeId};

use crate::fwdtable::{ClientKey, ForwardingTable, RouteDecision};
use crate::messages::{CtrlMsg, TcpHandoffState};

/// What the host must do after feeding an event into a state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a control message to back-end `to`.
    SendCtrl {
        /// Destination back-end.
        to: NodeId,
        /// The message.
        msg: CtrlMsg,
    },
    /// Forward raw client bytes to back-end `to` (data path).
    ForwardPackets {
        /// Destination back-end.
        to: NodeId,
        /// Packet payloads, in order.
        packets: Vec<Vec<u8>>,
    },
    /// Hand these request bytes to the dispatcher for assignment.
    DeliverToDispatcher {
        /// Connection the bytes belong to.
        conn: ConnId,
        /// Raw request bytes.
        data: Vec<u8>,
    },
    /// Tell the dispatcher the connection is gone (load bookkeeping).
    ConnectionClosed {
        /// The closed connection.
        conn: ConnId,
    },
}

/// Per-connection front-end phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FePhase {
    /// Handoff requested, waiting for the ack.
    AwaitingHandoff(NodeId),
    /// Established at a back-end.
    Established(NodeId),
    /// Migrating from old to new.
    Migrating { from: NodeId, to: NodeId },
}

/// The front-end handoff module: connection phases plus the forwarding table.
#[derive(Debug, Default)]
pub struct FeHandoff {
    conns: HashMap<ConnId, (ClientKey, FePhase)>,
    keys: HashMap<ClientKey, ConnId>,
    table: ForwardingTable,
}

/// Errors from misuse of the front-end machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeError {
    /// The connection id is unknown.
    UnknownConn(ConnId),
    /// The message does not fit the connection's current phase.
    BadPhase(ConnId),
}

impl FeHandoff {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the forwarding table.
    pub fn table(&self) -> &ForwardingTable {
        &self.table
    }

    /// Starts handing `conn` (from `client`) to `backend`: emits the
    /// handoff request carrying the TCP state and the first request bytes.
    pub fn start_handoff(
        &mut self,
        conn: ConnId,
        client: ClientKey,
        backend: NodeId,
        tcp: TcpHandoffState,
        first_request: Vec<u8>,
    ) -> Vec<Action> {
        self.conns
            .insert(conn, (client, FePhase::AwaitingHandoff(backend)));
        self.keys.insert(client, conn);
        vec![Action::SendCtrl {
            to: backend,
            msg: CtrlMsg::HandoffRequest {
                conn,
                tcp,
                first_request,
            },
        }]
    }

    /// Starts migrating an established connection to `to` (multiple
    /// handoff). Client packets buffer in the forwarding table until the
    /// new owner acks.
    pub fn start_migration(
        &mut self,
        conn: ConnId,
        to: NodeId,
        tcp: TcpHandoffState,
    ) -> Result<Vec<Action>, FeError> {
        let (client, phase) = self
            .conns
            .get_mut(&conn)
            .ok_or(FeError::UnknownConn(conn))?;
        let FePhase::Established(from) = *phase else {
            return Err(FeError::BadPhase(conn));
        };
        *phase = FePhase::Migrating { from, to };
        self.table.begin_migration(*client);
        Ok(vec![Action::SendCtrl {
            to,
            msg: CtrlMsg::MigrateRequest { conn, tcp },
        }])
    }

    /// Feeds a control message received from back-end `from`.
    pub fn on_ctrl(&mut self, from: NodeId, msg: CtrlMsg) -> Result<Vec<Action>, FeError> {
        match msg {
            CtrlMsg::HandoffAck { conn, accepted } => {
                let (client, phase) = self
                    .conns
                    .get_mut(&conn)
                    .ok_or(FeError::UnknownConn(conn))?;
                let FePhase::AwaitingHandoff(backend) = *phase else {
                    return Err(FeError::BadPhase(conn));
                };
                if accepted {
                    *phase = FePhase::Established(backend);
                    self.table.install(*client, backend);
                    Ok(Vec::new())
                } else {
                    // Refused: the dispatcher must pick another node; the
                    // connection is dropped at this layer.
                    let client = *client;
                    self.conns.remove(&conn);
                    self.keys.remove(&client);
                    Ok(vec![Action::ConnectionClosed { conn }])
                }
            }
            CtrlMsg::MigrateAck { conn, accepted } => {
                let (client, phase) = self
                    .conns
                    .get_mut(&conn)
                    .ok_or(FeError::UnknownConn(conn))?;
                let FePhase::Migrating { from: old, to } = *phase else {
                    return Err(FeError::BadPhase(conn));
                };
                let client = *client;
                let mut actions = Vec::new();
                if accepted {
                    self.conns.insert(conn, (client, FePhase::Established(to)));
                    let replay = self.table.complete_migration(client, to);
                    if !replay.is_empty() {
                        actions.push(Action::ForwardPackets {
                            to,
                            packets: replay,
                        });
                    }
                } else {
                    self.conns.insert(conn, (client, FePhase::Established(old)));
                    let replay = self.table.abort_migration(client, old);
                    if !replay.is_empty() {
                        actions.push(Action::ForwardPackets {
                            to: old,
                            packets: replay,
                        });
                    }
                }
                Ok(actions)
            }
            CtrlMsg::ConnClosed { conn } => {
                let (client, _) = self.conns.remove(&conn).ok_or(FeError::UnknownConn(conn))?;
                self.keys.remove(&client);
                self.table.remove(client);
                Ok(vec![Action::ConnectionClosed { conn }])
            }
            CtrlMsg::DiskQueueReport { .. } => {
                // Routed to the dispatcher by the host; nothing to do here.
                let _ = from;
                Ok(Vec::new())
            }
            // Back-ends never send these.
            CtrlMsg::HandoffRequest { conn, .. }
            | CtrlMsg::TaggedRequest { conn, .. }
            | CtrlMsg::MigrateRequest { conn, .. } => Err(FeError::BadPhase(conn)),
        }
    }

    /// Routes one incoming client packet per the forwarding table; request
    /// packets additionally surface to the dispatcher (§7.3: "the
    /// forwarding module sends a copy of all request packets to the
    /// dispatcher once the connection has been handed off").
    pub fn on_client_packet(
        &mut self,
        client: ClientKey,
        payload: &[u8],
        is_request: bool,
    ) -> Vec<Action> {
        match self.table.route(client, payload, is_request) {
            RouteDecision::Forward {
                node,
                copy_to_dispatcher,
            } => {
                let mut actions = vec![Action::ForwardPackets {
                    to: node,
                    packets: vec![payload.to_vec()],
                }];
                if copy_to_dispatcher {
                    if let Some(&conn) = self.keys.get(&client) {
                        actions.push(Action::DeliverToDispatcher {
                            conn,
                            data: payload.to_vec(),
                        });
                    }
                }
                actions
            }
            // Dropped: the migration buffer hit its byte cap; the packet
            // is discarded (TCP retransmission recovers it) rather than
            // buffered without bound.
            RouteDecision::Buffered | RouteDecision::Dropped | RouteDecision::Unrouted => {
                Vec::new()
            }
        }
    }

    /// Emits the dispatcher's assignment as a tagged request on the control
    /// session to the connection-handling node.
    pub fn send_tagged(&self, conn: ConnId, data: Vec<u8>) -> Result<Vec<Action>, FeError> {
        let (_, phase) = self.conns.get(&conn).ok_or(FeError::UnknownConn(conn))?;
        let node = match *phase {
            FePhase::Established(n) => n,
            FePhase::AwaitingHandoff(n) => n,
            // Mid-migration the tagged request follows to the new owner.
            FePhase::Migrating { to, .. } => to,
        };
        Ok(vec![Action::SendCtrl {
            to: node,
            msg: CtrlMsg::TaggedRequest { conn, data },
        }])
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Returns `true` if no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}

/// The back-end side: owned connections and their pending tagged requests.
#[derive(Debug)]
pub struct BeHandoff {
    /// This node's id (used in acks the host sends).
    pub node: NodeId,
    /// Maximum connections this node accepts (0 = unlimited).
    pub capacity: usize,
    conns: HashMap<ConnId, TcpHandoffState>,
    /// Tagged requests awaiting delivery to the server process, per conn.
    pending: HashMap<ConnId, Vec<Vec<u8>>>,
}

impl BeHandoff {
    /// Creates a back-end module.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        BeHandoff {
            node,
            capacity,
            conns: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Handles a control message from the front-end; returns the reply (if
    /// any) that the host must send back.
    pub fn on_ctrl(&mut self, msg: CtrlMsg) -> Option<CtrlMsg> {
        match msg {
            CtrlMsg::HandoffRequest {
                conn,
                tcp,
                first_request,
            } => {
                let accepted = self.capacity == 0 || self.conns.len() < self.capacity;
                if accepted {
                    self.conns.insert(conn, tcp);
                    self.pending.entry(conn).or_default().push(first_request);
                }
                Some(CtrlMsg::HandoffAck { conn, accepted })
            }
            CtrlMsg::MigrateRequest { conn, tcp } => {
                let accepted = self.capacity == 0 || self.conns.len() < self.capacity;
                if accepted {
                    self.conns.insert(conn, tcp);
                }
                Some(CtrlMsg::MigrateAck { conn, accepted })
            }
            CtrlMsg::TaggedRequest { conn, data } => {
                if self.conns.contains_key(&conn) {
                    self.pending.entry(conn).or_default().push(data);
                }
                None
            }
            // Front-ends never send the remaining types to a back-end.
            _ => None,
        }
    }

    /// The server process consumed the pending requests for `conn`.
    pub fn take_pending(&mut self, conn: ConnId) -> Vec<Vec<u8>> {
        self.pending.remove(&conn).unwrap_or_default()
    }

    /// The connection finished (or migrated away): drop local state and
    /// produce the close notification for the front-end (on finish).
    pub fn release(&mut self, conn: ConnId, notify_frontend: bool) -> Option<CtrlMsg> {
        self.conns.remove(&conn);
        self.pending.remove(&conn);
        notify_frontend.then_some(CtrlMsg::ConnClosed { conn })
    }

    /// Number of owned connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Returns `true` if this node owns no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp() -> TcpHandoffState {
        TcpHandoffState {
            client_ip: 1,
            client_port: 4242,
            local_port: 80,
            snd_nxt: 100,
            rcv_nxt: 200,
            snd_wnd: 8192,
            mss: 1460,
        }
    }

    fn client() -> ClientKey {
        ClientKey { ip: 1, port: 4242 }
    }

    #[test]
    fn full_handoff_cycle() {
        let mut fe = FeHandoff::new();
        let mut be = BeHandoff::new(NodeId(1), 0);
        let conn = ConnId(1);

        let actions = fe.start_handoff(conn, client(), NodeId(1), tcp(), b"GET /".to_vec());
        let Action::SendCtrl { to, msg } = &actions[0] else {
            panic!()
        };
        assert_eq!(*to, NodeId(1));

        let ack = be.on_ctrl(msg.clone()).expect("ack");
        assert_eq!(be.take_pending(conn), vec![b"GET /".to_vec()]);

        assert!(fe.on_ctrl(NodeId(1), ack).unwrap().is_empty());
        // Route installed: client packets now flow to the back-end.
        let acts = fe.on_client_packet(client(), b"GET /2", true);
        assert!(matches!(&acts[0], Action::ForwardPackets { to, .. } if *to == NodeId(1)));
        assert!(matches!(&acts[1], Action::DeliverToDispatcher { .. }));

        // Close unwinds everything.
        let close = be.release(conn, true).expect("close msg");
        let acts = fe.on_ctrl(NodeId(1), close).unwrap();
        assert_eq!(acts, vec![Action::ConnectionClosed { conn }]);
        assert!(fe.is_empty());
        assert!(fe.table().is_empty());
        assert!(be.is_empty());
    }

    #[test]
    fn refused_handoff_reports_closed() {
        let mut fe = FeHandoff::new();
        let mut be = BeHandoff::new(NodeId(0), 1);
        // Fill the back-end to capacity.
        be.on_ctrl(CtrlMsg::HandoffRequest {
            conn: ConnId(9),
            tcp: tcp(),
            first_request: Vec::new(),
        });
        let conn = ConnId(1);
        let actions = fe.start_handoff(conn, client(), NodeId(0), tcp(), Vec::new());
        let Action::SendCtrl { msg, .. } = &actions[0] else {
            panic!()
        };
        let ack = be.on_ctrl(msg.clone()).unwrap();
        assert_eq!(
            ack,
            CtrlMsg::HandoffAck {
                conn,
                accepted: false
            }
        );
        let acts = fe.on_ctrl(NodeId(0), ack).unwrap();
        assert_eq!(acts, vec![Action::ConnectionClosed { conn }]);
        assert!(fe.is_empty());
    }

    #[test]
    fn migration_replays_buffered_packets_to_new_owner() {
        let mut fe = FeHandoff::new();
        let conn = ConnId(1);
        fe.start_handoff(conn, client(), NodeId(0), tcp(), Vec::new());
        fe.on_ctrl(
            NodeId(0),
            CtrlMsg::HandoffAck {
                conn,
                accepted: true,
            },
        )
        .unwrap();

        let acts = fe.start_migration(conn, NodeId(2), tcp()).unwrap();
        assert!(matches!(&acts[0], Action::SendCtrl { to, .. } if *to == NodeId(2)));
        // Packets during migration buffer (no loss, no misdelivery).
        assert!(fe.on_client_packet(client(), b"p1", false).is_empty());
        assert!(fe.on_client_packet(client(), b"p2", true).is_empty());

        let acts = fe
            .on_ctrl(
                NodeId(2),
                CtrlMsg::MigrateAck {
                    conn,
                    accepted: true,
                },
            )
            .unwrap();
        assert_eq!(
            acts,
            vec![Action::ForwardPackets {
                to: NodeId(2),
                packets: vec![b"p1".to_vec(), b"p2".to_vec()],
            }]
        );
        // Subsequent packets flow directly to the new owner.
        let acts = fe.on_client_packet(client(), b"p3", false);
        assert!(matches!(&acts[0], Action::ForwardPackets { to, .. } if *to == NodeId(2)));
    }

    #[test]
    fn refused_migration_falls_back_to_old_owner() {
        let mut fe = FeHandoff::new();
        let conn = ConnId(1);
        fe.start_handoff(conn, client(), NodeId(0), tcp(), Vec::new());
        fe.on_ctrl(
            NodeId(0),
            CtrlMsg::HandoffAck {
                conn,
                accepted: true,
            },
        )
        .unwrap();
        fe.start_migration(conn, NodeId(2), tcp()).unwrap();
        fe.on_client_packet(client(), b"p", false);
        let acts = fe
            .on_ctrl(
                NodeId(2),
                CtrlMsg::MigrateAck {
                    conn,
                    accepted: false,
                },
            )
            .unwrap();
        assert_eq!(
            acts,
            vec![Action::ForwardPackets {
                to: NodeId(0),
                packets: vec![b"p".to_vec()]
            }]
        );
        // Old owner still serves the connection.
        let acts = fe.on_client_packet(client(), b"q", false);
        assert!(matches!(&acts[0], Action::ForwardPackets { to, .. } if *to == NodeId(0)));
    }

    #[test]
    fn tagged_requests_follow_the_connection() {
        let mut fe = FeHandoff::new();
        let conn = ConnId(1);
        fe.start_handoff(conn, client(), NodeId(0), tcp(), Vec::new());
        fe.on_ctrl(
            NodeId(0),
            CtrlMsg::HandoffAck {
                conn,
                accepted: true,
            },
        )
        .unwrap();
        let acts = fe.send_tagged(conn, b"GET /be_2/x".to_vec()).unwrap();
        assert!(matches!(&acts[0], Action::SendCtrl { to, .. } if *to == NodeId(0)));
        // Mid-migration, tags go to the prospective new owner.
        fe.start_migration(conn, NodeId(2), tcp()).unwrap();
        let acts = fe.send_tagged(conn, b"GET /y".to_vec()).unwrap();
        assert!(matches!(&acts[0], Action::SendCtrl { to, .. } if *to == NodeId(2)));
    }

    #[test]
    fn protocol_misuse_is_rejected() {
        let mut fe = FeHandoff::new();
        assert_eq!(
            fe.on_ctrl(NodeId(0), CtrlMsg::ConnClosed { conn: ConnId(9) }),
            Err(FeError::UnknownConn(ConnId(9)))
        );
        let conn = ConnId(1);
        fe.start_handoff(conn, client(), NodeId(0), tcp(), Vec::new());
        // Migrating before establishment is a phase error.
        assert_eq!(
            fe.start_migration(conn, NodeId(1), tcp()),
            Err(FeError::BadPhase(conn))
        );
        // A back-end-bound message arriving at the front-end is an error.
        assert!(fe
            .on_ctrl(
                NodeId(0),
                CtrlMsg::TaggedRequest {
                    conn,
                    data: Vec::new()
                }
            )
            .is_err());
    }

    #[test]
    fn backend_ignores_tags_for_unknown_connections() {
        let mut be = BeHandoff::new(NodeId(0), 0);
        assert!(be
            .on_ctrl(CtrlMsg::TaggedRequest {
                conn: ConnId(5),
                data: b"x".to_vec()
            })
            .is_none());
        assert!(be.take_pending(ConnId(5)).is_empty());
    }
}
