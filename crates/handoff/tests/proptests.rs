//! Property-based tests for the handoff protocol: wire round-trips under
//! fragmentation, and packet conservation/ordering across arbitrary
//! migration interleavings — the §7.2 "pipeline must not drain" guarantee.

use proptest::prelude::*;

use phttp_core::{ConnId, NodeId};
use phttp_handoff::fwdtable::ClientKey;
use phttp_handoff::machine::{Action, FeHandoff};
use phttp_handoff::messages::{CtrlMsg, TcpHandoffState};
use phttp_handoff::wire::{encode, FrameDecoder};

fn tcp() -> TcpHandoffState {
    TcpHandoffState {
        client_ip: 1,
        client_port: 7,
        local_port: 80,
        snd_nxt: 0,
        rcv_nxt: 0,
        snd_wnd: 1024,
        mss: 1460,
    }
}

fn arb_msg() -> impl Strategy<Value = CtrlMsg> {
    let bytes = proptest::collection::vec(any::<u8>(), 0..256);
    prop_oneof![
        (any::<u64>(), bytes.clone()).prop_map(|(c, b)| CtrlMsg::HandoffRequest {
            conn: ConnId(c),
            tcp: tcp(),
            first_request: b,
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(c, a)| CtrlMsg::HandoffAck {
            conn: ConnId(c),
            accepted: a
        }),
        (any::<u64>(), bytes).prop_map(|(c, b)| CtrlMsg::TaggedRequest {
            conn: ConnId(c),
            data: b
        }),
        any::<u64>().prop_map(|c| CtrlMsg::MigrateRequest {
            conn: ConnId(c),
            tcp: tcp()
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(c, a)| CtrlMsg::MigrateAck {
            conn: ConnId(c),
            accepted: a
        }),
        any::<u64>().prop_map(|c| CtrlMsg::ConnClosed { conn: ConnId(c) }),
        any::<u32>().prop_map(|d| CtrlMsg::DiskQueueReport { depth: d }),
    ]
}

proptest! {
    /// Any message sequence survives encoding, arbitrary fragmentation, and
    /// decoding, in order.
    #[test]
    fn wire_roundtrip_under_fragmentation(
        msgs in proptest::collection::vec(arb_msg(), 1..20),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            encode(m, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    /// The decoder never panics on arbitrary garbage.
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        dec.feed(&data);
        // Errors are fine; panics are not.
        while let Ok(Some(_)) = dec.next() {}
    }

    /// Across an arbitrary interleaving of client packets and migrations,
    /// every packet is delivered to a back-end exactly once, in order.
    #[test]
    fn migrations_never_lose_or_reorder_packets(
        script in proptest::collection::vec(
            prop_oneof![
                // A client packet with a payload id.
                (0u8..2).prop_map(|_| 0u8),
                // Start a migration to a rotating target.
                Just(1u8),
            ],
            1..60,
        ),
    ) {
        let mut fe = FeHandoff::new();
        let conn = ConnId(1);
        let client = ClientKey { ip: 1, port: 7 };
        fe.start_handoff(conn, client, NodeId(0), tcp(), Vec::new());
        fe.on_ctrl(NodeId(0), CtrlMsg::HandoffAck { conn, accepted: true }).unwrap();

        let mut delivered: Vec<u32> = Vec::new();
        let mut seq = 0u32;
        let mut migrating_to: Option<NodeId> = None;
        let mut next_target = 1usize;

        let collect = |actions: Vec<Action>, delivered: &mut Vec<u32>| {
            for a in actions {
                if let Action::ForwardPackets { packets, .. } = a {
                    for p in packets {
                        delivered.push(u32::from_be_bytes(p[..4].try_into().unwrap()));
                    }
                }
            }
        };

        for step in script {
            match step {
                0 => {
                    let payload = seq.to_be_bytes().to_vec();
                    seq += 1;
                    let acts = fe.on_client_packet(client, &payload, false);
                    collect(acts, &mut delivered);
                }
                _ => {
                    if let Some(to) = migrating_to.take() {
                        // Complete the in-flight migration first.
                        let acts = fe
                            .on_ctrl(to, CtrlMsg::MigrateAck { conn, accepted: true })
                            .unwrap();
                        collect(acts, &mut delivered);
                    } else {
                        let to = NodeId(next_target % 4);
                        next_target += 1;
                        if fe.start_migration(conn, to, tcp()).is_ok() {
                            migrating_to = Some(to);
                        }
                    }
                }
            }
        }
        // Settle any in-flight migration so buffers drain.
        if let Some(to) = migrating_to {
            let acts = fe
                .on_ctrl(to, CtrlMsg::MigrateAck { conn, accepted: true })
                .unwrap();
            collect(acts, &mut delivered);
        }
        // Conservation and ordering: exactly 0..seq in order.
        prop_assert_eq!(delivered.len() as u32, seq);
        for (i, &v) in delivered.iter().enumerate() {
            prop_assert_eq!(v, i as u32);
        }
    }
}
