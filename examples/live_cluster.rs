//! Live prototype demo: boot the loopback-TCP cluster (front-end + N
//! back-end nodes + lateral-fetch peers), drive it with real HTTP/1.1
//! pipelined clients, and print per-node statistics — the paper's §7/§8
//! experiment in one process.
//!
//! ```text
//! cargo run --release --example live_cluster [nodes]
//! ```

use std::time::Duration;

use phttp_cluster::core::PolicyKind;
use phttp_cluster::proto::{run_load, ClientProtocol, Cluster, DiskEmu, LoadConfig, ProtoConfig};
use phttp_cluster::trace::{generate, reconstruct, SessionConfig, SynthConfig};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let mut synth = SynthConfig::small();
    synth.num_page_views = 1_200;
    let trace = generate(&synth);
    let workload = reconstruct(&trace, SessionConfig::default());

    println!(
        "starting {} back-ends; {} requests across {} persistent connections",
        nodes,
        trace.len(),
        workload.connections.len()
    );

    let cluster = Cluster::start(
        ProtoConfig {
            nodes,
            policy: PolicyKind::ExtLard,
            cache_bytes: 1536 * 1024,
            disk: DiskEmu {
                seek: Duration::from_micros(500),
                bytes_per_sec: 120.0 * 1024.0 * 1024.0,
            },
            ..ProtoConfig::default()
        },
        &trace,
    )
    .expect("start cluster");
    println!("front-end listening on {}\n", cluster.frontend_addr());

    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 24,
            protocol: ClientProtocol::PHttp,
            verify: true,
            read_timeout: Duration::from_secs(10),
        },
    );

    println!(
        "served {} requests on {} connections in {:.2}s  ->  {:.0} req/s ({} errors)\n",
        report.requests,
        report.connections,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.errors
    );

    println!("per-node breakdown:");
    for (i, s) in cluster.node_stats().iter().enumerate() {
        println!(
            "  be{i}: served={:<6} hits={:<6} ({:>5.1}%)  lateral out/in={}/{}  {:.1} MB",
            s.served,
            s.hits,
            if s.served > 0 {
                100.0 * s.hits as f64 / s.served as f64
            } else {
                0.0
            },
            s.lateral_out,
            s.lateral_in,
            s.bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!(
        "\nmapping replication factor: {:.2} (1.0 = pure working-set partition)",
        cluster.frontend().replication_factor()
    );

    cluster.shutdown();
    println!("cluster shut down cleanly");
}
