//! Quickstart: generate a workload, simulate a 4-node cluster under three
//! policies, and print the paper's key comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phttp_cluster::sim::{build_workload, SimConfig, Simulator};
use phttp_cluster::trace::{generate, SessionConfig, SynthConfig};

fn main() {
    // 1. A synthetic Rice-like trace (deterministic under its seed).
    let trace = generate(&SynthConfig::small());
    println!(
        "workload: {} requests over {} targets ({:.1} MB working set, {:.1} KB mean response)\n",
        trace.len(),
        trace.distinct_targets(),
        trace.working_set_bytes() as f64 / (1024.0 * 1024.0),
        trace.mean_response_bytes() / 1024.0,
    );

    // 2. Simulate the paper's headline configurations on 4 back-ends.
    for label in [
        "WRR",                     // the commercial baseline
        "simple-LARD",             // ASPLOS '98 LARD on HTTP/1.0
        "simple-LARD-PHTTP",       // what P-HTTP does to it...
        "BEforward-extLARD-PHTTP", // ...and this paper's fix
    ] {
        let mut cfg = SimConfig::paper_config(label, 4);
        cfg.cache_bytes = 2 * 1024 * 1024; // small trace -> small caches
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let report = Simulator::new(cfg, &trace, &workload).run();
        println!("{}", report.summary());
    }

    println!(
        "\nReading the numbers: LARD beats WRR through cache aggregation; naive\n\
         persistent connections (simple-LARD-PHTTP) squander that locality; the\n\
         extended LARD policy with back-end forwarding wins it back."
    );
}
