//! Policy deep-dive: run every mechanism/policy configuration at one
//! cluster size and dissect *why* the throughputs differ — hit rates,
//! forwarded/migrated requests, CPU vs. disk utilization, and front-end
//! load. This is the evaluation logic of the paper's §6 in one screen.
//!
//! ```text
//! cargo run --release --example policy_comparison [nodes]
//! ```

use phttp_cluster::sim::{build_workload, SimConfig, Simulator};
use phttp_cluster::trace::{generate, SessionConfig, SynthConfig};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let trace = generate(&SynthConfig::default());
    println!(
        "cluster of {nodes} nodes, {} requests, {:.0} MB working set\n",
        trace.len(),
        trace.working_set_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "{:<28} {:>9} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7}",
        "config", "req/s", "hit%", "cpu%", "disk%", "moved", "fe%", "lat ms"
    );

    for label in [
        "WRR",
        "WRR-PHTTP",
        "simple-LARD",
        "simple-LARD-PHTTP",
        "multiHandoff-extLARD-PHTTP",
        "BEforward-extLARD-PHTTP",
        "zeroCost-extLARD-PHTTP",
        "relay-LARD-PHTTP",
    ] {
        let cfg = SimConfig::paper_config(label, nodes);
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        let cpu = r.per_node.iter().map(|n| n.cpu_utilization).sum::<f64>() / nodes as f64;
        let disk = r.per_node.iter().map(|n| n.disk_utilization).sum::<f64>() / nodes as f64;
        println!(
            "{:<28} {:>9.0} {:>6.1}% {:>6.1}% {:>6.1}% {:>8} {:>7.1}% {:>7.1}",
            label,
            r.throughput_rps,
            r.cache_hit_rate * 100.0,
            cpu * 100.0,
            disk * 100.0,
            r.forwarded_requests + r.migrations,
            r.fe_utilization * 100.0,
            r.mean_latency_ms,
        );
    }

    println!(
        "\n'moved' counts requests served off the connection-handling node\n\
         (lateral fetches under back-end forwarding, migrations under\n\
         multiple handoff). WRR and simple LARD cannot move requests."
    );
}
