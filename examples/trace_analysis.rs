//! Workload tooling tour: generate a trace, reconstruct P-HTTP connections
//! with the paper's §6 heuristics, and print the statistics the paper
//! reports about its Rice University trace (working set, coverage curve,
//! requests per connection, pipelining batches).
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```
//!
//! Feed a real server log instead by piping it through the CLF parser —
//! see `phttp_cluster::trace::clf::parse_log`.

use phttp_cluster::trace::{generate, reconstruct, SessionConfig, SynthConfig};

fn main() {
    let trace = generate(&SynthConfig::default());

    println!("== corpus ==");
    println!("targets:           {}", trace.num_targets());
    println!("corpus bytes:      {:.1} MB", mb(trace.corpus_bytes()));
    println!("requests:          {}", trace.len());
    println!("distinct targets:  {}", trace.distinct_targets());
    println!("working set:       {:.1} MB", mb(trace.working_set_bytes()));
    println!(
        "mean response:     {:.1} KB",
        trace.mean_response_bytes() / 1024.0
    );
    println!(
        "trace span:        {:.1} minutes",
        trace.end_time().as_secs_f64() / 60.0
    );

    // The paper: "our results show that this trace needs X MB of memory to
    // cover Y% of all requests".
    println!("\n== cache coverage curve ==");
    let fractions = [0.90, 0.95, 0.97, 0.99, 1.00];
    let curve = trace.coverage_curve(&fractions);
    for (f, bytes) in fractions.iter().zip(curve) {
        println!(
            "{:>5.0}% of requests <- {:.1} MB of cache",
            f * 100.0,
            mb(bytes)
        );
    }

    // The §6 reconstruction heuristics: 15 s idle close, 1 s batch window.
    println!("\n== persistent-connection reconstruction ==");
    let conns = reconstruct(&trace, SessionConfig::default());
    println!("connections:        {}", conns.connections.len());
    println!(
        "requests/connection: {:.2}",
        conns.mean_requests_per_connection()
    );
    println!(
        "batches/connection:  {:.2}",
        conns.mean_batches_per_connection()
    );
    let pipelined = conns
        .connections
        .iter()
        .flat_map(|c| c.batches.iter())
        .filter(|b| b.len() > 1)
        .count();
    println!("multi-request batches (pipelining): {pipelined}");

    let longest = conns
        .connections
        .iter()
        .map(|c| c.num_requests())
        .max()
        .unwrap_or(0);
    println!("longest connection: {longest} requests");
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
